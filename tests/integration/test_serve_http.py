"""The HTTP/JSON serving surface end to end (stdlib client only).

Marked ``smoke``: a fast whole-subsystem pass (``pytest -m smoke``
runs these; see docs/testing.md).
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import GolaConfig, GolaSession, ServeConfig
from repro.serve import GolaServer, QueryScheduler
from repro.workloads import SBI_QUERY, generate_sessions

pytestmark = pytest.mark.smoke

CONFIG = GolaConfig(num_batches=5, bootstrap_trials=20, seed=9)


def make_server(config=CONFIG, serve=None):
    session = GolaSession(config)
    session.register_table("sessions", generate_sessions(3_000, seed=42))
    scheduler = QueryScheduler(session, serve=serve)
    return GolaServer(scheduler, host="127.0.0.1", port=0)


def get_json(url, timeout=30.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def post_json(url, body, timeout=30.0):
    request = urllib.request.Request(
        url, method="POST", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


@pytest.fixture
def server():
    srv = make_server().start()
    yield srv
    srv.shutdown()


class TestHTTPRoundTrip:
    def test_submit_stream_status_metrics(self, server):
        base = server.url
        code, health = get_json(base + "/healthz")
        assert code == 200 and health["ok"] is True
        assert health["state"] == "serving"
        assert health["scheduler"]["draining"] is False

        code, submitted = post_json(base + "/query", {"sql": SBI_QUERY})
        assert code == 201
        qid = submitted["id"]
        assert submitted["snapshots_url"] == f"/query/{qid}/snapshots"

        with urllib.request.urlopen(
            base + submitted["snapshots_url"], timeout=60.0
        ) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            records = [json.loads(line) for line in resp if line.strip()]
        assert [r["type"] for r in records] == \
            ["snapshot"] * CONFIG.num_batches + ["end"]
        first, end = records[0], records[-1]
        assert first["query_id"] == qid and first["batch"] == 1
        assert first["lo"] <= first["estimate"] <= first["hi"]
        assert end["state"] == "done"
        assert end["batches_done"] == CONFIG.num_batches
        # Estimates refine: the last CI is no wider than the first.
        last = records[-2]
        assert (last["hi"] - last["lo"]) <= (first["hi"] - first["lo"])

        code, status = get_json(base + submitted["status_url"])
        assert code == 200 and status["state"] == "done"
        code, listing = get_json(base + "/queries")
        assert [q["id"] for q in listing["queries"]] == [qid]
        code, metrics = get_json(base + "/metrics.json")
        assert metrics["counters"]["serve.snapshots"] == CONFIG.num_batches

    def test_per_query_config_and_target(self, server):
        code, submitted = post_json(server.url + "/query", {
            "sql": "SELECT AVG(play_time) FROM sessions",
            "config": {"num_batches": 3},
            "target_rsd": 10.0,
        })
        assert code == 201
        with urllib.request.urlopen(
            server.url + submitted["snapshots_url"], timeout=60.0
        ) as resp:
            records = [json.loads(line) for line in resp if line.strip()]
        # Trivially-loose target stops the run after the first batch.
        assert records[0]["of"] == 3
        assert records[-1]["state"] == "done"
        assert len(records) == 2

    def test_delete_cancels_mid_stream(self, server):
        code, submitted = post_json(server.url + "/query", {
            "sql": SBI_QUERY, "config": {"num_batches": 300},
        })
        qid = submitted["id"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            _, status = get_json(server.url + submitted["status_url"])
            if status["batches_done"] > 0:
                break
            time.sleep(0.01)
        request = urllib.request.Request(
            f"{server.url}/query/{qid}", method="DELETE"
        )
        with urllib.request.urlopen(request, timeout=30.0) as resp:
            cancelled = json.loads(resp.read())
        assert cancelled["state"] == "cancelled"
        assert cancelled["batches_done"] < 300
        # The stream replays what was produced, then ends as cancelled.
        with urllib.request.urlopen(
            f"{server.url}/query/{qid}/snapshots", timeout=30.0
        ) as resp:
            records = [json.loads(line) for line in resp if line.strip()]
        assert records[-1]["type"] == "end"
        assert records[-1]["state"] == "cancelled"


class TestHTTPErrors:
    def test_unknown_id_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(server.url + "/query/q99/status")
        assert err.value.code == 404

    def test_bad_sql_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(server.url + "/query", {"sql": "SELEKT nope"})
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"] == "ParseError"

    def test_missing_sql_and_bad_config_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(server.url + "/query", {})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(server.url + "/query",
                      {"sql": SBI_QUERY, "config": {"bogus": 1}})
        assert err.value.code == 400

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(server.url + "/nope")
        assert err.value.code == 404

    def test_malformed_json_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", method="POST",
            data=b'{"sql": "SELECT',
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"] == "ValueError"
        assert "invalid JSON body" in body["message"]

    def test_non_object_json_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", method="POST",
            data=b'["not", "an", "object"]',
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 400

    def test_unknown_id_snapshots_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get_json(server.url + "/query/q99/snapshots")
        assert err.value.code == 404
        assert json.loads(err.value.read())["error"] == "NotFound"

    def test_delete_already_finished_409(self, server):
        code, submitted = post_json(server.url + "/query", {
            "sql": "SELECT AVG(play_time) FROM sessions",
            "config": {"num_batches": 2},
        })
        qid = submitted["id"]
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            _, status = get_json(server.url + submitted["status_url"])
            if status["state"] == "done":
                break
            time.sleep(0.01)
        assert status["state"] == "done"
        request = urllib.request.Request(
            f"{server.url}/query/{qid}", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 409
        body = json.loads(err.value.read())
        assert body["error"] == "AlreadyFinished"
        assert body["state"] == "done"

    def test_delete_twice_second_is_409(self, server):
        code, submitted = post_json(server.url + "/query", {
            "sql": SBI_QUERY, "config": {"num_batches": 300},
        })
        qid = submitted["id"]
        request = urllib.request.Request(
            f"{server.url}/query/{qid}", method="DELETE"
        )
        with urllib.request.urlopen(request, timeout=30.0) as resp:
            assert json.loads(resp.read())["state"] == "cancelled"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 409
        body = json.loads(err.value.read())
        assert body["error"] == "AlreadyFinished"
        assert body["state"] == "cancelled"

    def test_delete_unknown_id_404(self, server):
        request = urllib.request.Request(
            f"{server.url}/query/q99", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30.0)
        assert err.value.code == 404

    def test_queue_full_429(self):
        server = make_server(
            serve=ServeConfig(max_concurrent=1, queue_depth=1)
        ).start()
        try:
            base = server.url
            slow = {"sql": SBI_QUERY, "config": {"num_batches": 500}}
            _, first = post_json(base + "/query", slow)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                _, status = get_json(base + first["status_url"])
                if status["state"] == "running":
                    break
                time.sleep(0.01)
            post_json(base + "/query", slow)  # fills the queue
            with pytest.raises(urllib.error.HTTPError) as err:
                post_json(base + "/query", slow)
            assert err.value.code == 429
            body = json.loads(err.value.read())
            assert body["error"] == "AdmissionError"
        finally:
            server.shutdown()
