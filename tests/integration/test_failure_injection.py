"""Failure injection: variation-range violations and recovery.

The paper (section 3.2): the approximate range ``R(u)`` may fail — a
running value or bootstrap output escapes it — in which case the system
detects the failure and recomputes from the data seen so far; a larger
``ε`` trades recomputation probability for larger uncertain sets.  These
tests force both regimes and verify answers stay exact either way.
"""

import pytest

from repro import GolaConfig, GolaSession
from repro.workloads import SBI_QUERY, generate_sessions


# The seed is chosen so that ε = 0 produces at least one range
# violation under the per-(batch, trial) weight streams; re-verify if
# the weight derivation scheme ever changes.
def run(epsilon, seed=31, num_batches=30, n=3000):
    session = GolaSession(
        GolaConfig(num_batches=num_batches, bootstrap_trials=24,
                   seed=seed, epsilon_multiplier=epsilon)
    )
    session.register_table("sessions", generate_sessions(n, seed=7))
    query = session.sql(SBI_QUERY)
    snapshots = list(query.run_online())
    exact = session.execute_batch(query)
    truth = float(exact.column(exact.schema.names[0])[0])
    return snapshots, truth


class TestEpsilonTradeoff:
    def test_tiny_epsilon_forces_rebuilds(self):
        """ε = 0 leaves no slack: guard intersections shrink to nothing
        and violations trigger recomputation — which must succeed."""
        snapshots, truth = run(epsilon=0.0)
        rebuilds = sum(len(s.rebuilds) for s in snapshots)
        assert rebuilds >= 1
        assert snapshots[-1].estimate == pytest.approx(truth, rel=1e-9)

    def test_huge_epsilon_avoids_rebuilds_but_grows_uncertain(self):
        small_eps, _ = run(epsilon=0.25)
        big_eps, truth = run(epsilon=8.0)
        assert sum(len(s.rebuilds) for s in big_eps) == 0
        assert big_eps[-1].total_uncertain >= small_eps[-1].total_uncertain
        assert big_eps[-1].estimate == pytest.approx(truth, rel=1e-9)

    def test_answers_identical_across_epsilon(self):
        """ε changes the work profile, never the answers (same data,
        same partitioning, same point estimates)."""
        a, _ = run(epsilon=0.5)
        b, _ = run(epsilon=4.0)
        for snap_a, snap_b in zip(a, b):
            assert snap_a.estimate == pytest.approx(
                snap_b.estimate, rel=1e-9
            )

    def test_rebuild_accounting_in_rows_processed(self):
        snapshots, _ = run(epsilon=0.0)
        saw_rebuild = False
        for snap in snapshots:
            for block_id in snap.rebuilds:
                saw_rebuild = True
                # A rebuilt block re-reads the full prefix; its row count
                # for that batch must exceed the plain batch size.
                batch_rows = 3000 // 30
                assert snap.rows_processed[block_id] > batch_rows
        assert saw_rebuild


class TestRetentionDisabled:
    def test_violation_without_retention_raises(self):
        from repro.errors import RangeViolation

        # Same configuration as test_tiny_epsilon_forces_rebuilds (which
        # is known to violate at least once) but with retention off: the
        # controller cannot recover and must surface the violation.
        session = GolaSession(
            GolaConfig(num_batches=30, bootstrap_trials=24, seed=31,
                       epsilon_multiplier=0.0, retain_batches=False)
        )
        session.register_table("sessions", generate_sessions(3000, seed=7))
        query = session.sql(SBI_QUERY)
        with pytest.raises(RangeViolation):
            list(query.run_online())
