"""Acceptance tests for the fault-injection/recovery subsystem.

Pins the three ISSUE guarantees end to end:

* determinism — the same faults seed yields byte-identical trace event
  sequences, and a *disabled* injector yields outputs bit-identical to a
  run without the subsystem;
* statistical soundness of skip-and-reweight — dropping mini-batches
  mid-run still converges to ground truth, with the final interval
  covering it and every post-skip snapshot flagged ``degraded``;
* checkpoint/resume — killing a run after batch *i* and resuming yields
  exactly the snapshot sequence the uninterrupted run would have
  produced, faults included.
"""

import numpy as np
import pytest

from repro import FaultsConfig, GolaConfig, GolaSession
from repro.faults import RunCheckpoint
from repro.errors import CheckpointError
from repro.obs import JsonlSink, MetricsRegistry, Tracer, load_events
from repro.workloads.sessions import SBI_QUERY, generate_sessions

ROWS = 4000
TABLE = generate_sessions(ROWS, seed=13)

#: A profile that skips some batches: no retry budget, 35% load failure.
SKIPPY = FaultsConfig(enabled=True, seed=21, batch_failure_prob=0.35,
                      max_retries=0)


def make_session(faults=None, tracer=None, **overrides):
    kwargs = dict(
        num_batches=10, bootstrap_trials=60, seed=17,
        faults=faults if faults is not None else FaultsConfig(),
    )
    kwargs.update(overrides)
    session = GolaSession(GolaConfig(**kwargs), tracer=tracer)
    session.register_table("sessions", TABLE)
    return session


class TestDeterminism:
    def _traced_events(self, tmp_path, name):
        path = tmp_path / f"{name}.jsonl"
        tracer = Tracer(JsonlSink(str(path)),
                        metrics=MetricsRegistry(enabled=True))
        session = make_session(faults=SKIPPY, tracer=tracer)
        snaps = list(session.sql(SBI_QUERY).run_online())
        tracer.close()
        records = load_events(str(path))
        # Timestamps differ between runs; names + attributes must not.
        events = [(r["name"], r.get("attrs") or {})
                  for r in records if r["type"] == "event"]
        return snaps, events

    def test_same_faults_seed_identical_event_sequence(self, tmp_path):
        snaps_a, events_a = self._traced_events(tmp_path, "a")
        snaps_b, events_b = self._traced_events(tmp_path, "b")
        assert any(name.startswith("fault.") for name, _ in events_a)
        assert events_a == events_b
        assert [s.estimate for s in snaps_a] == \
            [s.estimate for s in snaps_b]
        assert [s.skipped_batches for s in snaps_a] == \
            [s.skipped_batches for s in snaps_b]

    def test_disabled_injection_bit_identical_to_baseline(self):
        baseline = list(make_session().sql(SBI_QUERY).run_online())
        disabled = list(
            make_session(faults=FaultsConfig()).sql(SBI_QUERY).run_online()
        )
        for a, b in zip(baseline, disabled):
            assert a.estimate == b.estimate  # exact, not approx
            assert a.interval.low == b.interval.low
            assert a.interval.high == b.interval.high
            assert not b.degraded

    def test_enabled_but_zero_probability_also_identical(self):
        baseline = list(make_session().sql(SBI_QUERY).run_online())
        armed = list(
            make_session(faults=FaultsConfig(enabled=True))
            .sql(SBI_QUERY).run_online()
        )
        for a, b in zip(baseline, armed):
            assert a.estimate == b.estimate


class TestSkipAndReweight:
    @pytest.fixture(scope="class")
    def degraded_run(self):
        session = make_session(faults=SKIPPY)
        snaps = list(session.sql(SBI_QUERY).run_online())
        exact = session.execute_batch(SBI_QUERY)
        truth = float(exact.column(exact.schema.names[0])[0])
        return snaps, truth

    def test_some_but_not_all_batches_skipped(self, degraded_run):
        snaps, _ = degraded_run
        skipped = snaps[-1].skipped_batches
        assert skipped, "profile should have skipped at least one batch"
        assert len(skipped) < len(snaps)

    def test_degraded_flag_sticky_after_first_skip(self, degraded_run):
        snaps, _ = degraded_run
        first_skip = min(snaps[-1].skipped_batches)
        for snap in snaps:
            assert snap.degraded == (snap.batch_index >= first_skip)

    def test_lost_rows_accounted(self, degraded_run):
        snaps, _ = degraded_run
        last = snaps[-1]
        assert last.lost_rows > 0
        # 10 uniform batches over 4000 rows: each holds ~400 rows.
        assert last.lost_rows == pytest.approx(
            400 * len(last.skipped_batches), rel=0.2
        )

    def test_reweighted_estimate_converges_to_truth(self, degraded_run):
        snaps, truth = degraded_run
        final = snaps[-1]
        # AVG over the folded subset of uniform random batches is an
        # unbiased estimate of the full-data answer.
        assert final.estimate == pytest.approx(truth, rel=0.05)
        assert final.interval.contains(truth)

    def test_skipped_snapshot_reports_no_fold_work(self, degraded_run):
        snaps, _ = degraded_run
        skipped = set(snaps[-1].skipped_batches)
        for snap in snaps:
            if snap.batch_index in skipped:
                assert snap.total_rows_processed == 0
                assert snap.degraded


class TestCheckpointResume:
    def _run_all(self, faults):
        session = make_session(faults=faults)
        return [
            (s.estimate, s.degraded, tuple(s.skipped_batches or ()))
            for s in session.sql(SBI_QUERY).run_online()
        ]

    def _interrupt_and_resume(self, faults, stop_after, via_file=None):
        session = make_session(faults=faults)
        query = session.sql(SBI_QUERY)
        it = query.run_online()
        prefix = []
        for _ in range(stop_after):
            s = next(it)
            prefix.append((s.estimate, s.degraded,
                           tuple(s.skipped_batches or ())))
        ck = query.checkpoint()
        it.close()  # the "kill"
        if via_file is not None:
            ck.save(via_file)
            ck = str(via_file)
        fresh = make_session(faults=faults)
        rest = [
            (s.estimate, s.degraded, tuple(s.skipped_batches or ()))
            for s in fresh.sql(SBI_QUERY).run_online(resume_from=ck)
        ]
        return prefix + rest

    def test_resume_clean_run_roundtrip(self):
        full = self._run_all(FaultsConfig())
        resumed = self._interrupt_and_resume(FaultsConfig(), stop_after=4)
        assert resumed == full

    def test_resume_faulty_run_roundtrip(self):
        """RNG streams (weights + injector) must resume exactly."""
        full = self._run_all(SKIPPY)
        resumed = self._interrupt_and_resume(SKIPPY, stop_after=5)
        assert resumed == full

    def test_resume_from_saved_file(self, tmp_path):
        full = self._run_all(SKIPPY)
        resumed = self._interrupt_and_resume(
            SKIPPY, stop_after=3, via_file=tmp_path / "run.ck"
        )
        assert resumed == full

    def test_auto_checkpoint_writes_file(self, tmp_path):
        path = tmp_path / "auto.ck"
        faults = FaultsConfig(enabled=True, checkpoint_every=3,
                              checkpoint_path=str(path))
        session = make_session(faults=faults)
        it = session.sql(SBI_QUERY).run_online()
        for _ in range(4):
            next(it)
        it.close()
        ck = RunCheckpoint.load(path)
        assert ck.batch_index == 3  # last multiple of checkpoint_every
        fresh = make_session(faults=faults)
        rest = list(fresh.sql(SBI_QUERY).run_online(resume_from=ck))
        assert [s.batch_index for s in rest] == [4, 5, 6, 7, 8, 9, 10]

    def test_checkpoint_refuses_mismatched_config(self):
        session = make_session(faults=SKIPPY)
        query = session.sql(SBI_QUERY)
        it = query.run_online()
        next(it)
        ck = query.checkpoint()
        it.close()
        other = make_session(faults=SKIPPY, num_batches=20)
        with pytest.raises(CheckpointError, match="configuration"):
            list(other.sql(SBI_QUERY).run_online(resume_from=ck))

    def test_checkpoint_refuses_mismatched_query(self):
        session = make_session(faults=SKIPPY)
        query = session.sql(SBI_QUERY)
        it = query.run_online()
        next(it)
        ck = query.checkpoint()
        it.close()
        other = make_session(faults=SKIPPY)
        wrong = other.sql("SELECT SUM(play_time) FROM sessions")
        with pytest.raises(CheckpointError, match="query"):
            list(wrong.run_online(resume_from=ck))

    def test_checkpoint_before_any_batch_raises(self):
        session = make_session()
        query = session.sql(SBI_QUERY)
        it = query.run_online()
        with pytest.raises(CheckpointError, match="no batches"):
            query.checkpoint()
        it.close()


class TestQuarantineEndToEnd:
    def test_session_load_csv_quarantines_under_faults(self, tmp_path):
        from repro.storage import write_csv

        path = tmp_path / "sessions.csv"
        write_csv(TABLE, path)
        faults = FaultsConfig(enabled=True, seed=5,
                              row_corruption_prob=0.01,
                              row_error_budget=0.05)
        session = GolaSession(
            GolaConfig(num_batches=5, bootstrap_trials=20, seed=17,
                       faults=faults)
        )
        table = session.load_csv("sessions", path)
        q = session.last_quarantine
        assert q is not None and q.count > 0
        assert table.num_rows == ROWS - q.count
        # The degraded table still answers queries online.
        snaps = list(session.sql(SBI_QUERY).run_online())
        assert len(snaps) == 5
        assert np.isfinite(snaps[-1].estimate)

    def test_load_csv_without_faults_unchanged(self, tmp_path):
        from repro.storage import write_csv

        path = tmp_path / "sessions.csv"
        write_csv(TABLE, path)
        session = GolaSession(GolaConfig(num_batches=5,
                                         bootstrap_trials=20))
        table = session.load_csv("sessions", path)
        assert table.num_rows == ROWS
        assert session.last_quarantine is None


class TestRecoveryReport:
    def test_report_shows_recovery_section(self, tmp_path):
        from repro.obs import build_profile, render_profile

        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(str(path)),
                        metrics=MetricsRegistry(enabled=True))
        session = make_session(faults=SKIPPY, tracer=tracer)
        list(session.sql(SBI_QUERY).run_online())
        tracer.close()
        text = render_profile(build_profile(load_events(str(path))))
        assert "== recovery ==" in text
        assert "batches skipped (reweighted)" in text
        metrics = tracer.metrics.snapshot()
        assert metrics.counters["faults.batches_skipped"] >= 1
        assert metrics.counters["faults.rows_lost"] > 0


class TestResumeParallelFaultComposition:
    """Checkpoint/resume x worker pools x injected faults, bitwise.

    Regression pin for the three subsystems composed at once: a run
    with ``workers > 0`` and an injected ``controller.batch_load``
    fault profile, killed mid-run and resumed from its checkpoint,
    must replay to a snapshot stream *bit-identical* to the
    uninterrupted serial run under the same faults.
    """

    @staticmethod
    def _fingerprint(snapshots):
        out = []
        for s in snapshots:
            out.append((
                s.batch_index,
                tuple(s.table.column(c).tobytes()
                      for c in s.table.schema.names),
                tuple(sorted(
                    (name, err.lows.tobytes(), err.highs.tobytes())
                    for name, err in s.errors.items()
                )),
                tuple(sorted(s.uncertain_sizes.items())),
                tuple(s.rebuilds),
                s.degraded,
                tuple(s.skipped_batches or ()),
            ))
        return out

    @pytest.mark.parametrize("stop_after", [2, 5])
    def test_resume_parallel_faulty_matches_serial(self, stop_after):
        from repro.config import ParallelConfig

        full = self._fingerprint(
            make_session(faults=SKIPPY).sql(SBI_QUERY).run_online()
        )

        pool = ParallelConfig(workers=2, backend="thread")
        session = make_session(faults=SKIPPY, parallel=pool)
        query = session.sql(SBI_QUERY)
        it = query.run_online()
        prefix = []
        for _ in range(stop_after):
            prefix.append(next(it))
        ck = query.checkpoint()
        it.close()  # the "kill"

        fresh = make_session(faults=SKIPPY, parallel=pool)
        rest = list(fresh.sql(SBI_QUERY).run_online(resume_from=ck))

        assert [s.batch_index for s in rest] == \
            list(range(stop_after + 1, 11))
        assert self._fingerprint(prefix + rest) == full
