"""Smoke tests for the ``python -m repro`` CLI and the dashboard example."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_module(*args, stdin=None, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, input=stdin, timeout=timeout,
    )


class TestCli:
    def test_queries_listing(self):
        proc = run_module("queries")
        assert proc.returncode == 0, proc.stderr
        for token in ("SBI", "Q17", "C3", "GROUP BY"):
            assert token in proc.stdout

    def test_demo(self):
        proc = run_module("demo", "--rows", "4000", "--batches", "3")
        assert proc.returncode == 0, proc.stderr
        assert "batch 3/3" in proc.stdout
        assert "estimate" in proc.stdout

    def test_console_scripted(self):
        proc = run_module(
            "console", "--rows", "3000",
            stdin="SELECT COUNT(*) FROM sessions\n\\quit\n",
        )
        assert proc.returncode == 0, proc.stderr

    def test_requires_command(self):
        proc = run_module()
        assert proc.returncode != 0

    def test_trace_and_report(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        proc = run_module(
            "trace", "--rows", "4000", "--batches", "3",
            "--trace-out", str(trace_file),
        )
        assert proc.returncode == 0, proc.stderr
        assert "span profile" in proc.stdout
        assert "controller.rows_processed" in proc.stdout
        assert trace_file.exists()

        report = run_module("report", str(trace_file))
        assert report.returncode == 0, report.stderr
        assert "per-phase profile" in report.stdout
        assert "phase:fold" in report.stdout
        assert "batches: 3" in report.stdout

    def test_report_missing_events(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        proc = run_module("report", str(empty))
        assert proc.returncode == 1
        assert "no trace events" in proc.stdout


class TestDashboardExample:
    def test_dashboard(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "dashboard.py"), "8000", "3"],
            capture_output=True, text=True, timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        assert "dashboard tick 3/3" in proc.stdout
        assert "stream fully processed" in proc.stdout
        assert "±" in proc.stdout
