"""Re-enactment of the paper's section 3 walk-through (Figure 1).

The paper's narrative: with mini-batches {t1..tn}, {tn+1..t2n}, the inner
AVG(buffer_time) is 37 after batch 1 — so t1 (buffer 36) is filtered out —
but drops to 35.3 after batch 2, flipping t1 back in.  Classical delta
maintenance must therefore re-read batch 1; G-OLA instead keeps t1 in the
uncertain set (its buffer time falls inside the inner average's variation
range) and re-evaluates it lazily from its cached lineage.
"""

import numpy as np
import pytest

from repro import GolaConfig
from repro.core.delta import BlockRuntime
from repro.expr.expressions import Environment
from repro.plan import bind_statement, lineage_blocks
from repro.sql import parse_sql
from repro.storage import Catalog
from repro.workloads import SBI_QUERY, figure1_table


@pytest.fixture
def setup():
    table = figure1_table()
    cat = Catalog()
    cat.register("sessions", table, streamed=True)
    query = bind_statement(parse_sql(SBI_QUERY), cat)
    config = GolaConfig(num_batches=2, bootstrap_trials=64, seed=13)
    blocks = lineage_blocks(query)
    runtimes = {
        b.block_id: BlockRuntime(
            b, query.subqueries.get(b.produces)
            if b.produces is not None else None, config, {}
        )
        for b in blocks
    }
    return table, query, blocks, runtimes, config


def run_batches(table, blocks, runtimes, config, batch_bounds):
    """Drive the exact batch split of the paper's figure."""
    rng = np.random.default_rng(99)
    retained = []
    outputs = []
    k = len(batch_bounds)
    for i, (lo, hi) in enumerate(batch_bounds, start=1):
        batch = table.slice(lo, hi)
        weights = rng.poisson(
            1.0, (batch.num_rows, config.bootstrap_trials)
        ).astype(float)
        retained.append((batch, weights))
        penv = Environment()
        slot_states = {}
        for block in blocks:
            runtime = runtimes[block.block_id]
            stats = runtime.process_batch(
                i, batch, weights, slot_states, penv, retained=retained
            )
            if block.produces is not None:
                state = runtime.publish(penv, slot_states, k / i)
                slot_states[block.produces] = state
                state.bind_point(penv)
        out, _ = runtimes["main"].snapshot_output(penv, slot_states, k / i)
        outputs.append((stats, slot_states, out))
    return outputs


class TestWalkthrough:
    def test_inner_average_trajectory(self, setup):
        """Batch 1 inner avg = 37.0 exactly; batch 2 = 35.33 (paper)."""
        table, query, blocks, runtimes, config = setup
        outputs = run_batches(table, blocks, runtimes, config,
                              [(0, 3), (3, 6)])
        state1 = outputs[0][1][0]
        state2 = outputs[1][1][0]
        assert state1.estimate == pytest.approx(37.0)
        assert state2.estimate == pytest.approx(table["buffer_time"].mean())
        assert state2.estimate == pytest.approx(35.333, abs=0.01)

    def test_t1_lives_in_uncertain_set(self, setup):
        """With the paper's assumed range R(AVG) = [28.9, 45.1]:
        t2 (58) is deterministic-pass, tn (17) deterministic-fail, and
        t1 (36) lands in the uncertain set (paper section 3.2)."""
        from repro.core.uncertain import ScalarSlotState
        from repro.estimate import VariationRange

        table, query, blocks, runtimes, config = setup
        main = runtimes["main"]
        state = ScalarSlotState(
            slot=0, estimate=37.0,
            replicas=np.array([30.0, 44.0]),
            vrange=VariationRange(28.9, 45.1),
        )
        penv = Environment(scalars={0: 37.0})
        batch = table.slice(0, 3)  # {t1, t2, tn}
        weights = np.ones((3, config.bootstrap_trials))
        stats = main.process_batch(
            1, batch, weights, {0: state}, penv,
            retained=[(batch, weights)],
        )
        cached = main.cache.table.column("buffer_time").tolist()
        assert cached == [36.0]  # exactly t1 is uncertain
        assert stats.folded_pass == 1  # t2
        assert stats.folded_fail == 1  # tn

    def test_flip_is_absorbed_without_rescan(self, setup):
        """After batch 2 the answer equals the exact SBI result, and the
        work done was bounded by |batch| + |uncertain|, not |D_1|."""
        table, query, blocks, runtimes, config = setup
        outputs = run_batches(table, blocks, runtimes, config,
                              [(0, 3), (3, 6)])
        final = outputs[-1][2]
        inner = table["buffer_time"].mean()
        expected = table["play_time"][table["buffer_time"] > inner].mean()
        got = float(final.column(final.schema.names[0])[0])
        assert got == pytest.approx(expected, rel=1e-9)

        stats2 = runtimes["main"].stats_history[-1]
        if not stats2.rebuilt:
            assert stats2.candidates <= 3 + len(
                runtimes["main"].stats_history[0].__dict__
            ) + 3  # batch 2 rows + batch-1 uncertain leftovers

    def test_exact_answer_on_full_run(self, setup):
        table, query, blocks, runtimes, config = setup
        outputs = run_batches(table, blocks, runtimes, config,
                              [(0, 3), (3, 6)])
        # The paper's dataset: sessions with buffer > 35.33 are t1, t2, t4.
        final = outputs[-1][2]
        got = float(final.column(final.schema.names[0])[0])
        assert got == pytest.approx((238 + 135 + 194) / 3)
