"""Partial-aggregate projections: warm-started recurring queries.

The acceptance property: a repeated serve query over a converted
dataset resumes from the persisted per-block partial aggregates and
reaches its first ±5% snapshot in **fewer batches** than the cold run —
while the stream it emits stays a bit-identical suffix of the cold
stream (warm-starting changes latency, never answers).
"""

import dataclasses

import numpy as np
import pytest

from repro import GolaConfig, GolaSession, StorageConfig
from repro.faults.chaos import snapshot_fingerprint
from repro.serve import QueryScheduler
from repro.storage.colstore import convert_table
from repro.storage.colstore.projections import ProjectionStore
from repro.storage.table import Table

ROWS = 40_000
BATCHES = 10
SEED = 2015
# High dispersion relative to the mean so the ±5% CI target is crossed
# mid-run rather than at the first snapshot.
SQL = "SELECT AVG(y) FROM fact"


def make_table():
    rng = np.random.default_rng(7)
    return Table.from_columns({
        "y": rng.normal(20.0, 60.0, ROWS),
        "g": rng.integers(0, 3, ROWS).astype(np.int64),
    })


@pytest.fixture
def dataset(tmp_path):
    path = tmp_path / "ds"
    convert_table(make_table(), path, num_batches=BATCHES, seed=SEED,
                  shuffle=True)
    return path


def projected_config(**storage_kwargs) -> GolaConfig:
    storage = StorageConfig(projections=True, projection_every=2,
                            **storage_kwargs)
    return GolaConfig(num_batches=BATCHES, seed=SEED,
                      bootstrap_trials=32, storage=storage)


def run_stream(config, dataset, sql=SQL):
    session = GolaSession(config)
    session.register_colstore("fact", dataset)
    return list(session.sql(sql).run_online())


class TestControllerWarmStart:
    def test_warm_run_is_bitwise_suffix_of_cold(self, dataset):
        config = projected_config()
        cold = run_stream(config, dataset)
        assert len(cold) == BATCHES
        warm = run_stream(config, dataset)
        assert 0 < len(warm) < len(cold)
        assert snapshot_fingerprint(warm) == \
            snapshot_fingerprint(cold[-len(warm):])

    def test_final_answer_matches_in_memory(self, dataset):
        config = projected_config()
        run_stream(config, dataset)  # populate the store
        warm = run_stream(config, dataset)
        mem = GolaSession(
            GolaConfig(num_batches=BATCHES, seed=SEED,
                       bootstrap_trials=32)
        )
        mem.register_table("fact", make_table())
        mem_snaps = list(mem.sql(SQL).run_online())
        assert snapshot_fingerprint([warm[-1]]) == \
            snapshot_fingerprint([mem_snaps[-1]])

    def test_different_query_is_not_warm_started(self, dataset):
        config = projected_config()
        run_stream(config, dataset)
        other = run_stream(config, dataset,
                           sql="SELECT g, AVG(y) FROM fact GROUP BY g")
        assert len(other) == BATCHES  # cold: full stream

    def test_different_config_is_not_warm_started(self, dataset):
        run_stream(projected_config(), dataset)
        changed = dataclasses.replace(projected_config(),
                                      bootstrap_trials=16)
        assert len(run_stream(changed, dataset)) == BATCHES

    def test_projection_files_live_next_to_partitions(self, dataset):
        config = projected_config()
        run_stream(config, dataset)
        store = ProjectionStore(dataset / "_projections")
        entries = store.entries()
        assert entries, "expected persisted projections"
        # projection_every=2 over 10 batches: saved at 0,2,4,6,8
        assert max(e["batch_index"] for e in entries) == 8
        for entry in entries:
            assert (dataset / "_projections" /
                    entry["state_file"]).exists()


class TestServeWarmStart:
    def test_repeated_query_converges_in_fewer_batches(self, dataset):
        session = GolaSession(projected_config())
        session.register_colstore("fact", dataset)
        scheduler = QueryScheduler(session)
        try:
            cold = scheduler.submit(SQL)
            scheduler.wait(cold.id, timeout=120.0)
            warm = scheduler.submit(SQL)
            scheduler.wait(warm.id, timeout=120.0)

            def batches_to_target(qid, eps=0.05):
                history = scheduler.telemetry.get(qid).stream.history
                seen = 0
                for record in history:
                    if record.get("type") != "convergence":
                        continue
                    seen += 1
                    rel = record.get("rel_width")
                    if rel is not None and rel <= eps:
                        return seen
                return None

            cold_n = batches_to_target(cold.id)
            warm_n = batches_to_target(warm.id)
            assert cold_n is not None and cold_n > 1, (
                "cold run should cross the ±5% target mid-run; got "
                f"{cold_n}"
            )
            assert warm_n is not None
            assert warm_n < cold_n
        finally:
            scheduler.close()
