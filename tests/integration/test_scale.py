"""Scale smoke tests: the engine stays fast and exact at 1M rows.

Marked ``slow``: deselect locally with ``pytest -m "not slow"`` when
iterating (see docs/testing.md).
"""

import time

import pytest

pytestmark = pytest.mark.slow

from repro import GolaConfig, GolaSession
from repro.workloads import SBI_QUERY, generate_sessions, generate_tpch
from repro.workloads.tpch import Q17_QUERY


@pytest.mark.parametrize("n", [1_000_000])
class TestMillionRows:
    def test_sbi_online_throughput(self, n):
        session = GolaSession(
            GolaConfig(num_batches=10, bootstrap_trials=40, seed=1)
        )
        session.register_table("sessions", generate_sessions(n, seed=1))
        query = session.sql(SBI_QUERY)
        started = time.perf_counter()
        last = query.run_to_completion()
        elapsed = time.perf_counter() - started
        exact = session.execute_batch(query)
        assert last.estimate == pytest.approx(
            float(exact.column(exact.schema.names[0])[0]), rel=1e-9
        )
        # Generous bound: the whole online run (10 batches x 40 trials
        # over 1M rows, two blocks) should stay interactive-ish.
        assert elapsed < 60.0, f"online SBI took {elapsed:.1f}s at 1M rows"

    def test_q17_online_throughput(self, n):
        session = GolaSession(
            GolaConfig(num_batches=10, bootstrap_trials=20, seed=1)
        )
        session.register_table("tpch", generate_tpch(n, seed=1))
        query = session.sql(Q17_QUERY)
        started = time.perf_counter()
        last = query.run_to_completion()
        elapsed = time.perf_counter() - started
        exact = session.execute_batch(query)
        assert last.estimate == pytest.approx(
            float(exact.column(exact.schema.names[0])[0]), rel=1e-8
        )
        assert elapsed < 120.0, f"online Q17 took {elapsed:.1f}s at 1M rows"

    def test_uncertain_fraction_stays_small_at_scale(self, n):
        session = GolaSession(
            GolaConfig(num_batches=10, bootstrap_trials=20, seed=2)
        )
        session.register_table("sessions", generate_sessions(n, seed=2))
        last = session.sql(SBI_QUERY).run_to_completion()
        assert last.total_uncertain < 0.03 * n
