"""Integration: every query from the paper's evaluation, online vs exact.

For each of SBI, C1–C3 (Conviva) and Q11/Q17/Q18/Q20 (TPC-H), the final
online snapshot (all batches folded, multiplicity 1) must equal the exact
batch engine's answer — the strongest end-to-end correctness check the
execution model admits.
"""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession
from repro.workloads import (
    CONVIVA_QUERIES,
    SBI_QUERY,
    TPCH_QUERIES,
    generate_conviva,
    generate_sessions,
    generate_tpch,
)

N_ROWS = 20_000
CONFIG = GolaConfig(num_batches=4, bootstrap_trials=24, seed=17)


@pytest.fixture(scope="module")
def tpch_session():
    s = GolaSession(CONFIG)
    s.register_table("tpch", generate_tpch(N_ROWS, seed=5))
    return s


@pytest.fixture(scope="module")
def conviva_session():
    s = GolaSession(CONFIG)
    s.register_table("conviva", generate_conviva(N_ROWS, seed=5))
    return s


@pytest.fixture(scope="module")
def sessions_session():
    s = GolaSession(CONFIG)
    s.register_table("sessions", generate_sessions(N_ROWS, seed=5))
    return s


def assert_online_matches_exact(session, sql):
    query = session.sql(sql)
    exact = session.execute_batch(query)
    last = query.run_to_completion()
    online = last.table
    assert online.num_rows == exact.num_rows, (
        f"row count {online.num_rows} != exact {exact.num_rows}"
    )
    for col in exact.schema.names:
        a = exact.column(col)
        b = online.column(col)
        try:
            a_sorted = np.sort(a.astype(np.float64))
            b_sorted = np.sort(b.astype(np.float64))
            np.testing.assert_allclose(a_sorted, b_sorted, rtol=1e-6,
                                       err_msg=f"column {col}")
        except (TypeError, ValueError):
            assert sorted(map(str, a.tolist())) == \
                sorted(map(str, b.tolist())), f"column {col}"
    return last


class TestSbi:
    def test_sbi(self, sessions_session):
        last = assert_online_matches_exact(sessions_session, SBI_QUERY)
        # The uncertain set stays a small fraction of the data.
        assert last.total_uncertain < 0.1 * N_ROWS


@pytest.mark.parametrize("name", sorted(CONVIVA_QUERIES))
class TestConviva:
    def test_query(self, conviva_session, name):
        assert_online_matches_exact(
            conviva_session, CONVIVA_QUERIES[name]
        )


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
class TestTpch:
    def test_query(self, tpch_session, name):
        assert_online_matches_exact(tpch_session, TPCH_QUERIES[name])


class TestIntermediateSemantics:
    """Intermediate snapshots equal Q(D_i, k/i) computed exactly."""

    def test_sbi_prefix_semantics(self, sessions_session):
        from repro.baselines import ClassicalDeltaMaintenance

        query = sessions_session.sql(SBI_QUERY)
        online = [s.estimate for s in query.run_online()]
        cdm = ClassicalDeltaMaintenance(
            query.query,
            {"sessions": sessions_session.catalog.get("sessions")},
            CONFIG,
        )
        exact_prefix = [
            float(s.table.column(s.table.schema.names[0])[0])
            for s in cdm.run()
        ]
        np.testing.assert_allclose(online, exact_prefix, rtol=1e-9)

    def test_q17_prefix_semantics(self, tpch_session):
        from repro.baselines import ClassicalDeltaMaintenance

        query = tpch_session.sql(TPCH_QUERIES["Q17"])
        online = [s.estimate for s in query.run_online()]
        cdm = ClassicalDeltaMaintenance(
            query.query, {"tpch": tpch_session.catalog.get("tpch")}, CONFIG
        )
        exact_prefix = [
            float(s.table.column(s.table.schema.names[0])[0])
            for s in cdm.run()
        ]
        np.testing.assert_allclose(online, exact_prefix, rtol=1e-9)
