"""Acceptance: 8 concurrent paper queries through the scheduler.

The serving tentpole's contract (ISSUE 4): running the paper's workload
queries *concurrently* under the deficit round-robin scheduler yields,
for every query, a snapshot stream **bit-identical** to running that
query alone — multiplexing schedules, never results.  Also exercised
here: cancellation and deadline control paths under concurrency, and an
injected per-query ``scheduler.step`` fault that quarantines exactly one
query while the other seven keep refining to completion.
"""

import dataclasses

import pytest

pytestmark = pytest.mark.slow  # 8-way concurrency soak; see docs/testing.md

from repro import FaultsConfig, GolaConfig, GolaSession, ServeConfig
from repro.serve import CANCELLED, DONE, EXPIRED, FAILED, QueryScheduler
from repro.workloads import (
    CONVIVA_QUERIES,
    SBI_QUERY,
    TPCH_QUERIES,
    generate_conviva,
    generate_sessions,
    generate_tpch,
)

N_ROWS = 3_000
CONFIG = GolaConfig(num_batches=5, bootstrap_trials=24, seed=17)
SERVE = ServeConfig(max_concurrent=8, queue_depth=16, max_steps_per_turn=2)

SESSIONS = generate_sessions(N_ROWS, seed=5)
CONVIVA = generate_conviva(N_ROWS, seed=5)
TPCH = generate_tpch(N_ROWS, seed=5)

#: The paper's evaluation workload: SBI + Conviva C1–C3 + TPC-H queries.
WORKLOAD = [
    ("SBI", SBI_QUERY),
    ("C1", CONVIVA_QUERIES["C1"]),
    ("C2", CONVIVA_QUERIES["C2"]),
    ("C3", CONVIVA_QUERIES["C3"]),
    ("Q11", TPCH_QUERIES["Q11"]),
    ("Q17", TPCH_QUERIES["Q17"]),
    ("Q18", TPCH_QUERIES["Q18"]),
    ("Q20", TPCH_QUERIES["Q20"]),
]


def make_session(config=CONFIG):
    session = GolaSession(config)
    session.register_table("sessions", SESSIONS)
    session.register_table("conviva", CONVIVA)
    session.register_table("tpch", TPCH)
    return session


def column_bytes(table, name):
    """Column payload bytes; object columns (strings) by value, not
    by pointer (``tobytes`` on an object array serializes addresses)."""
    arr = table.column(name)
    if arr.dtype == object:
        return repr(arr.tolist()).encode()
    return arr.tobytes()


def fingerprint(snapshots):
    """Everything user-visible in a snapshot stream, bitwise."""
    out = []
    for s in snapshots:
        out.append((
            s.batch_index,
            tuple(column_bytes(s.table, c)
                  for c in s.table.schema.names),
            tuple(sorted(
                (name, err.lows.tobytes(), err.highs.tobytes())
                for name, err in s.errors.items()
            )),
            tuple(sorted(s.uncertain_sizes.items())),
            tuple(sorted(s.rows_processed.items())),
            tuple(s.rebuilds),
            s.degraded,
            tuple(s.skipped_batches or ()),
        ))
    return out


@pytest.fixture(scope="module")
def serial_fingerprints():
    """Each workload query run alone, in a fresh session."""
    baselines = {}
    for name, sql in WORKLOAD:
        session = make_session()
        baselines[name] = fingerprint(session.sql(sql).run_online())
    return baselines


class TestEightConcurrentQueries:
    def test_streams_bit_identical_to_serial(self, serial_fingerprints):
        session = make_session()
        with QueryScheduler(session, serve=SERVE) as sched:
            runs = {name: sched.submit(sql) for name, sql in WORKLOAD}
            assert sched.wait(timeout=300.0), "workload did not finish"
            for name, run in runs.items():
                assert run.state == DONE, (name, run.state, run.error)
                assert fingerprint(run.snapshots) == \
                    serial_fingerprints[name], name
                # The stream saw every batch plus the end record.
                history = run.stream.history
                assert len(history) == CONFIG.num_batches + 1
                assert history[-1]["state"] == DONE
            # Same-table queries shared mini-batch partitions: only one
            # miss per distinct streamed table.
            stats = sched.scan_cache.stats
            assert stats["misses"] == 3
            assert stats["hits"] == len(WORKLOAD) - 3
            counters = sched.metrics_snapshot().counters
            assert counters["scheduler.done"] == len(WORKLOAD)
            assert counters["scheduler.steps"] == \
                len(WORKLOAD) * CONFIG.num_batches

    def test_fault_quarantines_one_of_eight(self, serial_fingerprints):
        """One faulty query fails alone; the other 7 refine unperturbed."""
        faulty_config = dataclasses.replace(
            CONFIG,
            faults=FaultsConfig(enabled=True, step_failure_prob=1.0,
                                max_retries=0),
        )
        session = make_session()
        with QueryScheduler(session, serve=SERVE) as sched:
            runs = {}
            for name, sql in WORKLOAD:
                config = faulty_config if name == "Q17" else None
                runs[name] = sched.submit(sql, config=config)
            assert sched.wait(timeout=300.0)
            assert runs["Q17"].state == FAILED
            assert "scheduler.step" in runs["Q17"].error
            assert runs["Q17"].snapshots == []
            assert runs["Q17"].stream.history[-1]["state"] == FAILED
            for name, run in runs.items():
                if name == "Q17":
                    continue
                assert run.state == DONE, (name, run.state, run.error)
                assert fingerprint(run.snapshots) == \
                    serial_fingerprints[name], name
            counters = sched.metrics_snapshot().counters
            assert counters["scheduler.quarantined"] == 1
            assert counters["scheduler.done"] == len(WORKLOAD) - 1

    def test_cancel_and_deadline_among_concurrent(self,
                                                  serial_fingerprints):
        """Cancelling/expiring two queries leaves the rest bit-identical."""
        slow_config = dataclasses.replace(CONFIG, num_batches=400)
        session = make_session()
        with QueryScheduler(session, serve=SERVE) as sched:
            victim = sched.submit(SBI_QUERY, config=slow_config)
            expiring = sched.submit(
                CONVIVA_QUERIES["C1"], config=slow_config, deadline_s=0.2
            )
            survivors = {
                name: sched.submit(sql)
                for name, sql in WORKLOAD if name not in ("SBI", "C1")
            }
            # Cancel the victim once it has produced some estimates.
            deadline_ok = sched.wait(expiring.id, timeout=60.0)
            status = sched.cancel(victim.id)
            assert status["state"] in (CANCELLED, DONE)
            assert sched.wait(timeout=300.0)
            assert deadline_ok
            assert victim.state == CANCELLED
            assert victim.batches_done < 400
            assert expiring.state == EXPIRED
            assert expiring.batches_done < 400
            for name, run in survivors.items():
                assert run.state == DONE, (name, run.state, run.error)
                assert fingerprint(run.snapshots) == \
                    serial_fingerprints[name], name
