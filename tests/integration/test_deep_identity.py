"""Deep query-surface acceptance over the taxi workload.

Every new construct — window functions, DISTINCT aggregates, quantile
CIs, multi-fact joins, NaN-heavy columns — runs the same identity
matrix the colstore PR established for the paper queries: the snapshot
stream from converted on-disk datasets must be **bit-identical** to the
in-memory path (pruning on and off, serially and on a 4-worker pool),
and the serve scheduler's finished-run table must agree with a plain
serial run.  Multi-fact queries convert *both* streamed facts.
"""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession, StorageConfig
from repro.config import ParallelConfig
from repro.faults.chaos import snapshot_fingerprint
from repro.storage.colstore import convert_table
from repro.workloads.taxi import QUERIES, generate_taxi

ROWS = 4000  # <= quantile reservoir capacity: every path sees all rows
BATCHES = 4
SEED = 2015

QUERY_CASES = {
    "window_cum": QUERIES["T1"],
    "window_frame": QUERIES["T2"],
    "distinct_grouped": QUERIES["T3"],
    "distinct_filtered": QUERIES["T4"],
    "quantile_grouped": QUERIES["T5"],
    "quantile_join": QUERIES["T6"],
    "multifact_keyed": QUERIES["T7"],
    "multifact_scalar": QUERIES["T8"],
    "nullish_filter": QUERIES["T9"],
    "window_count": QUERIES["T10"],
}

STREAMED = ("trips", "surcharges")
STATIC = ("zones", "vendors")


@pytest.fixture(scope="module")
def taxi():
    return generate_taxi(ROWS, seed=SEED)


@pytest.fixture(scope="module")
def datasets(taxi, tmp_path_factory):
    """Both streamed facts converted once, shared by every case."""
    root = tmp_path_factory.mktemp("deep-identity")
    out = {}
    for name in STREAMED:
        path = root / name
        convert_table(taxi[name], path, num_batches=BATCHES, seed=SEED,
                      shuffle=True)
        out[name] = path
    return out


def _config(prune: bool, workers: int) -> GolaConfig:
    parallel = (ParallelConfig(workers=workers, backend="thread",
                               min_shard_rows=64)
                if workers > 1 else ParallelConfig())
    return GolaConfig(
        num_batches=BATCHES, seed=SEED, bootstrap_trials=16,
        parallel=parallel, storage=StorageConfig(prune=prune),
    )


def _session(taxi, config, datasets=None) -> GolaSession:
    session = GolaSession(config)
    for name in STREAMED:
        if datasets is not None:
            session.register_colstore(name, datasets[name])
        else:
            session.register_table(name, taxi[name])
    for name in STATIC:
        session.register_table(name, taxi[name], streamed=False)
    return session


@pytest.mark.parametrize("name", sorted(QUERY_CASES))
@pytest.mark.parametrize("prune", [True, False],
                         ids=["prune", "noprune"])
@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "pool4"])
def test_snapshot_stream_bit_identity(taxi, datasets, name, prune,
                                      workers):
    sql = QUERY_CASES[name]
    config = _config(prune, workers)
    mem = _session(taxi, config)
    mem_fp = snapshot_fingerprint(mem.sql(sql).run_online())
    cs = _session(taxi, config, datasets=datasets)
    cs_fp = snapshot_fingerprint(cs.sql(sql).run_online())
    assert cs_fp == mem_fp, (
        f"{name}: colstore stream diverged from in-memory "
        f"(prune={prune}, workers={workers})"
    )


def _assert_tables_close(a, b):
    assert a.schema.names == b.schema.names
    assert a.num_rows == b.num_rows
    for col in a.schema.names:
        x, y = a.column(col), b.column(col)
        if x.dtype == object:
            assert x.tolist() == y.tolist()
        else:
            np.testing.assert_allclose(
                x.astype(float), y.astype(float),
                rtol=1e-9, atol=1e-12, equal_nan=True,
            )


@pytest.mark.parametrize("name", sorted(QUERY_CASES))
def test_parallel_pool_matches_serial(taxi, name):
    sql = QUERY_CASES[name]
    serial = _session(taxi, _config(True, 1))
    pooled = _session(taxi, _config(True, 4))
    _assert_tables_close(
        serial.sql(sql).run_to_completion().table,
        pooled.sql(sql).run_to_completion().table,
    )


@pytest.mark.parametrize("name", sorted(QUERY_CASES))
def test_serve_final_table_matches_serial(taxi, name):
    from repro.serve import QueryScheduler

    sql = QUERY_CASES[name]
    serial = _session(taxi, _config(True, 1))
    expected = serial.sql(sql).run_to_completion().table

    served = _session(taxi, _config(True, 1))
    scheduler = QueryScheduler(served)
    try:
        run = scheduler.submit(sql, config=served.config)
        scheduler.wait(run.id, timeout=120.0)
        assert run.state == "done" and run.last_snapshot is not None, (
            f"serve run ended {run.state!r}: {run.error}"
        )
        _assert_tables_close(expected, run.last_snapshot.table)
    finally:
        scheduler.close()
