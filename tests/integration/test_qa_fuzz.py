"""The differential fuzz harness end to end.

Marked ``smoke``: this is the PR-time guarantee that the qa subsystem
itself works — a clean seeded sweep agrees across all execution paths,
an injected bug is caught (the harness can't silently rot), and a
divergent case shrinks to a replayable one-file reproducer.
"""

import json

import numpy as np
import pytest

from repro.qa import (
    DifferentialRunner,
    FuzzCase,
    QueryGenerator,
    Shrinker,
    generate_table,
    load_artifact,
    random_dim_spec,
    random_fact_spec,
    replay_artifact,
    save_artifact,
)
from repro.qa.cli import run_fuzz
from repro.config import QaConfig

pytestmark = pytest.mark.smoke


def make_cases(seed=0, rows=512, count=6, inject_bug=None):
    rng = np.random.default_rng(seed)
    fact = random_fact_spec(rng, rows=rows, seed=seed)
    dim = random_dim_spec(rng, fact, seed=seed + 1)
    gen = QueryGenerator(
        fact, generate_table(fact),
        dims={dim.name: (dim, generate_table(dim))}, seed=seed,
    )
    return [
        FuzzCase(tables=(fact, dim), query=gen.generate(),
                 num_batches=3, bootstrap_trials=8, seed=seed + i,
                 inject_bug=inject_bug)
        for i in range(count)
    ]


class TestCleanSweep:
    def test_seeded_sweep_has_zero_divergences(self):
        runner = DifferentialRunner(workers=2)
        for case in make_cases(seed=0, count=8):
            report = runner.run_case(case)
            assert not report.diverged, (case.sql, report.divergences)

    def test_sweep_through_serve_scheduler_agrees(self):
        runner = DifferentialRunner(workers=2, include_serve=True)
        for case in make_cases(seed=5, count=2):
            report = runner.run_case(case)
            assert not report.diverged, (case.sql, report.divergences)
            assert report.outcomes["serve"].status == "ok"


class TestInjectedBug:
    def test_injected_bug_is_caught(self):
        """The harness's negative control: a corrupted path must be
        reported as divergent, or the fuzzer is worthless."""
        runner = DifferentialRunner(workers=2)
        caught = 0
        for case in make_cases(seed=1, count=6, inject_bug="serial"):
            report = runner.run_case(case)
            if report.diverged:
                caught += 1
                assert any("serial" in d for d in report.divergences)
        assert caught >= 1

    def test_cli_sweep_fails_on_injected_bug(self, tmp_path):
        qa = QaConfig(queries=6, seed=1, rows=512, num_batches=3,
                      bootstrap_trials=8,
                      artifact_dir=str(tmp_path / "artifacts"))
        out = tmp_path / "report.json"
        code = run_fuzz(qa, out=str(out), inject_bug="serial")
        assert code == 1
        body = json.loads(out.read_text())
        assert body["divergences"] >= 1
        assert body["artifacts"]  # reproducers were written

    def test_cli_clean_sweep_exits_zero(self, tmp_path):
        qa = QaConfig(queries=6, seed=2, rows=512, num_batches=3,
                      bootstrap_trials=8,
                      artifact_dir=str(tmp_path / "artifacts"))
        out = tmp_path / "report.json"
        code = run_fuzz(qa, out=str(out))
        assert code == 0
        body = json.loads(out.read_text())
        assert body["queries"] == 6 and body["divergences"] == 0


class TestShrinkerAndReproducers:
    def _first_divergent(self, runner, cases):
        for case in cases:
            report = runner.run_case(case)
            if report.diverged:
                return case, report
        raise AssertionError("no divergent case found")

    def test_shrinks_to_minimal_replayable_reproducer(self, tmp_path):
        runner = DifferentialRunner(workers=2)
        case, report = self._first_divergent(
            runner, make_cases(seed=3, count=6, inject_bug="serial")
        )
        shrinker = Shrinker(runner)
        minimal, min_report = shrinker.shrink(case, report)
        assert min_report.diverged

        # Structurally minimal: no further simplification diverges
        # (guaranteed by the fixpoint loop), and no larger than the
        # original along every axis.
        assert len(minimal.query.predicates) <= \
            len(case.query.predicates)
        assert len(minimal.query.aggregates) <= \
            len(case.query.aggregates)
        assert all(m.rows <= o.rows
                   for m, o in zip(minimal.tables, case.tables))

        path = save_artifact(minimal, min_report,
                             tmp_path / "repro.json")
        loaded = load_artifact(path)
        assert loaded.sql == minimal.sql

        # The replay must reproduce the *same* divergence.
        replayed = replay_artifact(path, runner)
        assert replayed.diverged
        assert replayed.divergences == min_report.divergences

    def test_artifact_kind_is_validated(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError):
            load_artifact(bogus)

    def test_shrink_refuses_non_divergent_case(self):
        runner = DifferentialRunner(workers=2)
        case = make_cases(seed=0, count=1)[0]
        with pytest.raises(ValueError):
            Shrinker(runner).shrink(case)
