"""Shared-memory segment lifecycle: no ``/dev/shm`` leaks, ever.

ISSUE 8's lifecycle contract, probed by segment name (the registry
records every name it ever created, and :func:`segment_exists` asks the
OS): segments are unlinked after a normal drain+release, after a
mid-run cancel with folds still pending, after a session run stops
early, and after SIGKILL-induced supervised-pool rebuilds.
"""

import numpy as np
import pytest

from repro import FaultsConfig, GolaConfig, GolaSession
from repro.config import ParallelConfig
from repro.engine.aggregates import AvgState, SumState
from repro.estimate.bootstrap import PoissonWeightSource
from repro.faults import FaultInjector
from repro.parallel import HAVE_SHM, ParallelExecutor, segment_exists
from repro.workloads import SBI_QUERY, generate_sessions

pytestmark = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable"
)

CONFIG = ParallelConfig(workers=2, backend="process", min_shard_rows=1)


def _fold_batches(executor, batches=3, n=4000, trials=12, lazy=True):
    rng = np.random.default_rng(8)
    gi = rng.integers(0, 7, n)
    values = {"s": rng.normal(size=n), "a": rng.normal(size=n)}
    states = {"s": SumState(trials), "a": AvgState(trials)}
    source = PoissonWeightSource(trials, 99, label="shm-life")
    for _ in range(batches):
        executor.fold_boot_states(states, gi, values,
                                  source.batch_weights(n), lazy=lazy)
    return states


def _serial_reference(**kw):
    executor = ParallelExecutor(ParallelConfig())
    try:
        states = _fold_batches(executor, lazy=False, **kw)
    finally:
        executor.close()
    return {k: s.finalize() for k, s in states.items()}


class TestSegmentsNeverLeak:
    def test_unlinked_after_drain_and_release(self):
        executor = ParallelExecutor(CONFIG)
        try:
            _fold_batches(executor)
            executor.drain()
            registry = executor.shm_registry
            assert registry is not None and registry.created
            assert registry.live_segments() == []
            assert not any(segment_exists(n) for n in registry.created)
        finally:
            executor.close()

    def test_unlinked_after_midrun_cancel(self):
        # close() with a lazy fold still pending = the cancel path: the
        # pending lease must be released and every segment unlinked.
        executor = ParallelExecutor(CONFIG)
        _fold_batches(executor)  # last fold still holds its lease
        registry = executor.shm_registry
        created = list(registry.created)
        assert created and registry.live_segments()
        executor.close()
        assert not any(segment_exists(n) for n in created)

    def test_unlinked_after_session_stops_early(self):
        session = GolaSession(
            GolaConfig(num_batches=6, bootstrap_trials=16, seed=3,
                       parallel=CONFIG)
        )
        session.register_table(
            "sessions", generate_sessions(12_000, seed=5)
        )
        query = session.sql(SBI_QUERY)
        run = query.run_online()
        next(run)
        registry = query._controller.parallel.shm_registry
        assert registry is not None and registry.created
        query.stop()
        assert list(run) == []  # stop takes effect after the batch
        created = list(registry.created)
        assert not any(segment_exists(n) for n in created)

    def test_unlinked_after_sigkill_pool_rebuilds(self):
        # Workers are SIGKILLed mid-fold; the supervisor abandons and
        # rebuilds the pool and re-dispatches lost shards against the
        # still-live segments.  Results stay bit-identical and every
        # segment is still unlinked afterwards.
        injector = FaultInjector(
            FaultsConfig(enabled=True, seed=11, worker_kill_prob=0.5),
            master_seed=11,
        )
        executor = ParallelExecutor(
            ParallelConfig(workers=2, backend="process",
                           min_shard_rows=1, task_deadline_s=30.0),
            injector=injector,
        )
        try:
            states = _fold_batches(executor)
            executor.drain()
            registry = executor.shm_registry
            created = list(registry.created)
            restarts = executor._shard_pool.restarts
            out = {k: s.finalize() for k, s in states.items()}
        finally:
            executor.close()
        assert restarts >= 1, "chaos never killed a worker"
        assert created
        assert not any(segment_exists(n) for n in created)
        ref = _serial_reference()
        for alias in ref:
            assert np.array_equal(ref[alias], out[alias]), alias
