"""Smoke tests: every example script runs end to end on small inputs."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, stdin=None, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, input=stdin, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "8000", "5")
        assert proc.returncode == 0, proc.stderr
        assert "exact batch answer" in proc.stdout
        assert "estimate" in proc.stdout

    def test_ad_optimization(self):
        proc = run_example("ad_optimization.py", "20000")
        assert proc.returncode == 0, proc.stderr
        assert "over-performing ads" in proc.stdout
        assert "off-peak" in proc.stdout

    def test_ab_testing(self):
        proc = run_example("ab_testing.py", "15000")
        assert proc.returncode == 0, proc.stderr
        assert "verdict" in proc.stdout
        assert "exact answers" in proc.stdout

    @pytest.mark.parametrize("query", ["Q17", "Q18"])
    def test_tpch_online(self, query):
        proc = run_example("tpch_online.py", query, "20000")
        assert proc.returncode == 0, proc.stderr
        assert "G-OLA online execution" in proc.stdout
        assert "classical delta maintenance" in proc.stdout

    def test_sql_console_scripted(self):
        script = (
            "\\tables\n"
            "SELECT COUNT(*) FROM sessions\n"
            "\\batch SELECT COUNT(*) FROM sessions\n"
            "\\quit\n"
        )
        proc = run_example("sql_console.py", "5000", stdin=script)
        assert proc.returncode == 0, proc.stderr
        assert "sessions" in proc.stdout
        assert "batch" in proc.stdout

    def test_sql_console_reports_errors(self):
        script = "SELECT nope FROM sessions\n\\quit\n"
        proc = run_example("sql_console.py", "2000", stdin=script)
        assert proc.returncode == 0, proc.stderr
        assert "error:" in proc.stdout
