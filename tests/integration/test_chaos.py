"""End-to-end chaos: supervised recovery must be invisible in answers.

The acceptance surface for ISSUE 7: the chaos harness proves paper
queries survive worker kills/hangs/corruption bit-identical to serial,
a hung worker never stalls a run past its task deadline, a lost shard
degrades one query (skip-and-reweight, then a 503 on its stream) rather
than the server, SIGTERM drains cleanly while in-flight queries hit
injected faults, and 429/503 rejections carry an honest ``Retry-After``
that the load generator honors.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro import GolaConfig, GolaSession, ServeConfig
from repro.config import FaultsConfig, ParallelConfig
from repro.errors import ShardLostError
from repro.faults import ChaosRunner, ChaosSpec
from repro.parallel import ParallelExecutor
from repro.serve import GolaServer, QueryScheduler
from repro.serve.loadgen import LoadGenerator, LoadSpec
from repro.serve.scheduler import FAILED
from repro.workloads import SBI_QUERY, generate_sessions

pytestmark = pytest.mark.smoke

#: A CI-sized campaign; the external killer stays off by default so the
#: in-band seeded faults make these runs reproducible.
SMOKE = dataclasses.replace(ChaosSpec.smoke(), rows=6_000, batches=3,
                            external_killer=False)


class TestChaosHarness:
    def test_smoke_campaign_is_bit_identical(self):
        report = ChaosRunner(SMOKE).run()
        assert report["identical"]
        (query,) = report["queries"]
        assert query["snapshots"] == SMOKE.batches
        assert query["serial_fingerprint"] == query["chaos_fingerprint"]
        # The campaign must actually have exercised recovery, not
        # coasted under the sharding threshold.
        counters = query["counters"]
        assert counters.get("parallel.shard_tasks", 0) > 0
        assert (counters.get("parallel.restarts", 0)
                + counters.get("parallel.task_failures", 0)
                + counters.get("parallel.corrupt_results", 0)
                + counters.get("parallel.task_timeouts", 0)) > 0

    @pytest.mark.slow
    def test_external_killer_campaign(self):
        spec = dataclasses.replace(SMOKE, external_killer=True,
                                   killer_interval_s=0.1)
        report = ChaosRunner(spec).run()
        assert report["identical"]

    def test_hung_workers_never_stall_past_deadline(self):
        """Acceptance pin, end to end: a 30s hang against a 0.5s task
        deadline must not stretch the query anywhere near the hang."""
        spec = dataclasses.replace(
            SMOKE, kill_prob=0.0, corrupt_prob=0.0,
            hang_prob=0.9, hang_s=30.0, task_deadline_s=0.5,
        )
        report = ChaosRunner(spec).run()
        assert report["identical"]
        (query,) = report["queries"]
        assert query["counters"].get("parallel.task_timeouts", 0) > 0
        assert query["chaos_s"] < 20.0, (
            f"chaos run took {query['chaos_s']}s behind a 30s hang"
        )

    def test_cli_smoke_reports_identical(self, tmp_path):
        out = tmp_path / "chaos.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "chaos", "--smoke",
             "--rows", "4000", "--batches", "3", "--no-killer",
             "--out", str(out)],
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert report["identical"]
        assert json.loads(proc.stdout) == report


class _LossyExecutor(ParallelExecutor):
    """Loses the first batch's shards past every recovery rung."""

    def __init__(self, config, tracer=None):
        super().__init__(config, tracer=tracer)
        self.losses = 0

    def fold_boot_states(self, *args, **kwargs):
        if self.losses == 0:
            self.losses += 1
            raise ShardLostError(0, "injected unrecoverable shard loss")
        return super().fold_boot_states(*args, **kwargs)


class TestShardLossDegradation:
    def test_controller_skips_and_reweights_lost_shard(self):
        """An unrecoverable shard loss costs one batch (skip +
        reweight, flagged degraded), never the query."""
        config = GolaConfig(num_batches=4, bootstrap_trials=16, seed=3)
        session = GolaSession(config)
        session.register_table("sessions",
                               generate_sessions(4_000, seed=42))
        online = session.sql(SBI_QUERY)
        lossy = _LossyExecutor(
            ParallelConfig(workers=2, backend="thread", min_shard_rows=1)
        )
        controller = session._make_controller(online.query, config,
                                              parallel=lossy)
        snapshots = list(controller.run())
        assert lossy.losses == 1
        assert len(snapshots) == config.num_batches
        assert snapshots[0].degraded
        assert snapshots[-1].skipped_batches == [snapshots[0].batch_index]
        # Later batches fold normally and the stream stays flagged.
        assert all(s.degraded for s in snapshots)
        clean = list(session.sql(SBI_QUERY).run_online())
        assert not clean[-1].degraded
        assert (snapshots[-1].rows_processed != clean[-1].rows_processed)


def post_query(url, sql=SBI_QUERY, timeout=30.0):
    request = urllib.request.Request(
        url + "/query", method="POST",
        data=json.dumps({"sql": sql}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def expect_http_error(fn):
    with pytest.raises(urllib.error.HTTPError) as err:
        fn()
    exc = err.value
    body = json.loads(exc.read())
    return exc.code, exc.headers, body


class TestRetryAfter:
    def test_admission_rejection_carries_retry_after(self):
        config = GolaConfig(num_batches=10, bootstrap_trials=200, seed=9)
        serve = ServeConfig(max_concurrent=1, queue_depth=0)
        session = GolaSession(config)
        session.register_table("sessions",
                               generate_sessions(6_000, seed=42))
        server = GolaServer(QueryScheduler(session, serve=serve),
                            host="127.0.0.1", port=0).start()
        try:
            status, _ = post_query(server.url)
            assert status == 201
            code, headers, body = expect_http_error(
                lambda: post_query(server.url)
            )
            assert code == 429
            hint = int(headers["Retry-After"])
            assert hint >= 1
            assert body["retry_after_s"] == hint
        finally:
            server.shutdown()

    def test_draining_rejection_carries_retry_after(self):
        serve = ServeConfig(drain_timeout_s=7.0)
        session = GolaSession(GolaConfig(num_batches=3, seed=9))
        session.register_table("sessions",
                               generate_sessions(2_000, seed=42))
        server = GolaServer(QueryScheduler(session, serve=serve),
                            host="127.0.0.1", port=0).start()
        try:
            server.scheduler.begin_drain()
            code, headers, body = expect_http_error(
                lambda: post_query(server.url)
            )
            assert code == 503
            assert body["error"] == "DrainingError"
            assert int(headers["Retry-After"]) == 7
        finally:
            server.shutdown()

    def test_loadgen_honors_retry_after_and_recovers(self):
        """Rejected submissions wait out the server's hint and resubmit
        (seeded full jitter) instead of giving up."""
        config = GolaConfig(num_batches=4, bootstrap_trials=20, seed=9)
        serve = ServeConfig(max_concurrent=1, queue_depth=0)
        session = GolaSession(config)
        session.register_table("sessions",
                               generate_sessions(2_000, seed=42))
        server = GolaServer(QueryScheduler(session, serve=serve),
                            host="127.0.0.1", port=0).start()
        try:
            spec = LoadSpec(rate_qps=50.0, clients=4, queries=8,
                            seed=5, max_resubmits=4,
                            retry_after_cap_s=1.0, timeout_s=60.0,
                            mix=(("sbi", SBI_QUERY, 1.0),))
            report = LoadGenerator(spec).run(server.url)
        finally:
            server.shutdown()
        # A one-slot, zero-queue server cannot admit 4 concurrent
        # clients first try; recovery must come from honored hints.
        assert report["resubmits"] > 0
        assert report["recovered_by_resubmit"] > 0
        assert report["submitted"] == spec.queries
        assert report["completed"] > report["rejected"]


class TestFailedQueryIsolation:
    def test_failed_query_streams_503_not_server_death(self):
        """A query whose every step hits an injected fault is
        quarantined FAILED; its stream answers 503 while the server
        keeps serving everyone else."""
        config = GolaConfig(
            num_batches=3, seed=9,
            faults=FaultsConfig(enabled=True, seed=4,
                                step_failure_prob=1.0, max_retries=0,
                                retry_backoff_s=0.001),
        )
        session = GolaSession(config)
        session.register_table("sessions",
                               generate_sessions(2_000, seed=42))
        server = GolaServer(QueryScheduler(session),
                            host="127.0.0.1", port=0).start()
        try:
            _, submitted = post_query(server.url)
            qid = submitted["id"]
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if server.scheduler.get(qid).state == FAILED:
                    break
                time.sleep(0.05)
            assert server.scheduler.get(qid).state == FAILED
            code, headers, body = expect_http_error(
                lambda: urllib.request.urlopen(
                    f"{server.url}/query/{qid}/snapshots", timeout=30.0
                ).read()
            )
            assert code == 503
            assert body["error"] == "QueryFailed"
            assert body["state"] == FAILED
            # Permanent failure: no Retry-After bait on this stream.
            assert headers["Retry-After"] is None
            # The server itself is healthy.
            with urllib.request.urlopen(server.url + "/queries",
                                        timeout=30.0) as resp:
                assert resp.status == 200
        finally:
            server.shutdown()


class TestSigtermDrainUnderFaults:
    def test_sigterm_drains_inflight_faulty_queries(self):
        """SIGTERM while in-flight queries are hitting injected step
        faults must still exit 0 after the drain window."""
        env = {**os.environ, "PYTHONPATH": "src", "PYTHONUNBUFFERED": "1"}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--rows", "2000", "--batches", "3",
             "--faults", "step_failure_prob=0.3,seed=7"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        url = None
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                if line.startswith("serving on "):
                    url = line.split()[2]
                    break
            assert url, "server never came up"
            for _ in range(3):
                status, _ = post_query(url, timeout=30.0)
                assert status == 201
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
