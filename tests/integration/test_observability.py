"""End-to-end observability: trace events reconcile with snapshots.

Runs the SBI query with a zero-width guard epsilon so at least one batch
violates a variation-range guard and rebuilds, then checks that the
JSONL event log, the in-memory metrics and the ``OnlineSnapshot`` series
all tell the same story — per-batch row counts, uncertain-set sizes and
rebuild accounting agree exactly across the three views.
"""

import pytest

from repro import GolaConfig, GolaSession
from repro.obs import (
    AggregatingSink,
    JsonlSink,
    MetricsRegistry,
    TeeSink,
    Tracer,
    build_profile,
    load_events,
    render_profile,
)
from repro.workloads.sessions import SBI_QUERY, generate_sessions


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced SBI run with >=1 guard-violation rebuild."""
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    agg = AggregatingSink()
    tracer = Tracer(TeeSink(agg, JsonlSink(str(path))),
                    metrics=MetricsRegistry(enabled=True))
    session = GolaSession(
        # seed=31 is known to violate a guard at least once under the
        # per-(batch, trial) weight streams (see test_failure_injection).
        GolaConfig(num_batches=30, bootstrap_trials=24, seed=31,
                   epsilon_multiplier=0.0),
        tracer=tracer,
    )
    session.register_table("sessions", generate_sessions(3000, seed=7))
    snapshots = list(session.sql(SBI_QUERY).run_online())
    tracer.close()
    return snapshots, load_events(str(path)), agg, tracer


def batch_spans(records):
    return sorted(
        (r for r in records
         if r["type"] == "span" and r["name"] == "batch"),
        key=lambda r: r["attrs"]["batch_index"],
    )


class TestTraceSnapshotReconciliation:
    def test_run_rebuilt_at_least_once(self, traced_run):
        snapshots, _, _, _ = traced_run
        assert sum(len(s.rebuilds) for s in snapshots) >= 1

    def test_per_batch_rows_match_snapshots(self, traced_run):
        snapshots, records, _, _ = traced_run
        spans = batch_spans(records)
        assert len(spans) == len(snapshots) == 30
        traced = [s["attrs"]["rows_processed"] for s in spans]
        assert traced == [s.total_rows_processed for s in snapshots]
        assert [s["attrs"]["uncertain"] for s in spans] == \
            [s.total_uncertain for s in snapshots]
        assert [s["attrs"]["rebuilds"] for s in spans] == \
            [len(s.rebuilds) for s in snapshots]

    def test_block_spans_sum_to_batch_totals(self, traced_run):
        snapshots, records, _, _ = traced_run
        blocks = [r for r in records
                  if r["type"] == "span" and r["name"] == "block"]
        total = sum(r["attrs"]["rows_processed"] for r in blocks)
        assert total == sum(s.total_rows_processed for s in snapshots)

    def test_rebuild_spans_carry_cause_and_cost(self, traced_run):
        snapshots, records, _, _ = traced_run
        rebuilds = [r for r in records
                    if r["type"] == "span" and r["name"] == "phase:rebuild"]
        assert len(rebuilds) == sum(len(s.rebuilds) for s in snapshots)
        for r in rebuilds:
            assert "guard" in r["attrs"]["cause"].lower()
            assert r["attrs"]["rows_in"] > 0
        # A guard violation shows up on the guard-check span too.
        violated = [r for r in records
                    if r["type"] == "span" and r["name"] == "phase:guards"
                    and "violation" in r["attrs"]]
        assert len(violated) == len(rebuilds)

    def test_metrics_agree_with_snapshots(self, traced_run):
        snapshots, _, _, tracer = traced_run
        snap = tracer.metrics.snapshot()
        assert snap.counters["controller.batches"] == len(snapshots)
        assert snap.counters["controller.rows_processed"] == \
            sum(s.total_rows_processed for s in snapshots)
        assert snap.counters["controller.rebuilds"] == \
            sum(len(s.rebuilds) for s in snapshots)
        assert snap.counters["delta.rebuilds"] == \
            snap.counters["controller.rebuilds"]
        assert snap.gauges["controller.uncertain"] == \
            snapshots[-1].total_uncertain
        assert snap.histograms["controller.batch_seconds"].count == \
            len(snapshots)

    def test_aggregating_sink_matches_event_log(self, traced_run):
        snapshots, records, agg, _ = traced_run
        report = build_profile(records)
        assert agg.spans["batch"].count == \
            report.span_stats("batch").count == len(snapshots)
        assert agg.spans["block"].attr_totals["rows_processed"] == \
            report.span_stats("block").attr_totals["rows_processed"]

    def test_profile_renders(self, traced_run):
        snapshots, records, _, _ = traced_run
        text = render_profile(build_profile(records))
        assert "per-phase profile" in text
        assert "phase:fold" in text and "phase:classify" in text
        total = sum(s.total_rows_processed for s in snapshots)
        assert f"rows processed: {total:,}" in text
        assert "rebuilds: 1" in text or "rebuilds:" in text

    def test_snapshot_phase_seconds_populated(self, traced_run):
        snapshots, _, _, _ = traced_run
        for s in snapshots:
            assert s.phase_seconds is not None
            assert set(s.phase_seconds) == {"fold", "publish", "snapshot"}
            assert all(v >= 0.0 for v in s.phase_seconds.values())


class TestDisabledTracingUnchanged:
    def test_untraced_run_identical_results(self):
        """Tracing must not perturb the computation itself."""
        def run(tracer):
            session = GolaSession(
                GolaConfig(num_batches=5, bootstrap_trials=16, seed=3),
                tracer=tracer,
            )
            session.register_table(
                "sessions", generate_sessions(1500, seed=5)
            )
            return list(session.sql(SBI_QUERY).run_online())

        plain = run(None)
        traced = run(Tracer(AggregatingSink(),
                            metrics=MetricsRegistry(enabled=True)))
        assert [s.estimate for s in plain] == [s.estimate for s in traced]
        assert [s.total_rows_processed for s in plain] == \
            [s.total_rows_processed for s in traced]
        assert plain[-1].phase_seconds is None
        assert traced[-1].phase_seconds is not None
