"""`repro convert` / `repro inspect` / `repro fuzz --colstore` smoke."""

import json
import subprocess
import sys

from repro.storage.colstore import open_dataset


def run_module(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestConvertInspect:
    def test_workload_round_trip(self, tmp_path):
        out = tmp_path / "sessions-ds"
        proc = run_module(
            "convert", "--workload", "sessions", "--rows", "4000",
            "--batches", "4", "--out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        assert "wrote 4 partitions" in proc.stdout
        assert "fingerprint:" in proc.stdout

        inspect = run_module("inspect", str(out))
        assert inspect.returncode == 0, inspect.stderr
        assert "colstore dataset" in inspect.stdout
        assert "rows 4,000 in 4 partitions" in inspect.stdout
        assert "quarantined rows: none" in inspect.stdout

        as_json = run_module("inspect", str(out), "--json")
        assert as_json.returncode == 0, as_json.stderr
        report = json.loads(as_json.stdout)
        assert report["num_rows"] == 4000
        assert report["num_batches"] == 4
        assert report["source"] == "workload:sessions"
        assert report["codec_segments"]

    def test_csv_quarantine_round_trip(self, tmp_path):
        csv_path = tmp_path / "input.csv"
        lines = ["id,value"]
        lines += [f"{i},{i * 1.5}" for i in range(200)]
        lines.insert(50, "oops,not-a-number")  # malformed row
        csv_path.write_text("\n".join(lines) + "\n")

        out = tmp_path / "csv-ds"
        proc = run_module(
            "convert", "--csv", str(csv_path), "--batches", "2",
            "--error-budget", "0.05", "--out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        assert "quarantined 1 malformed row" in proc.stdout

        ds = open_dataset(out)
        assert ds.num_rows == 200
        rows = ds.quarantined_rows
        assert len(rows) == 1

        inspect = run_module("inspect", str(out))
        assert inspect.returncode == 0, inspect.stderr
        assert "quarantined rows: 1" in inspect.stdout
        report = json.loads(
            run_module("inspect", str(out), "--json").stdout
        )
        assert len(report["quarantine"]["rows"]) == 1

    def test_csv_over_budget_aborts(self, tmp_path):
        # Per column the bad fraction stays under the inference
        # tolerance (so id/value keep their numeric types), but the
        # union of bad rows exceeds the 5% budget: the load must abort.
        csv_path = tmp_path / "garbage.csv"
        rows = [[str(i), str(i * 2.0)] for i in range(200)]
        for i in range(0, 9):
            rows[i][0] = "bad"
        for i in range(20, 29):
            rows[i][1] = "worse"
        lines = ["id,value"] + [",".join(r) for r in rows]
        csv_path.write_text("\n".join(lines) + "\n")
        proc = run_module(
            "convert", "--csv", str(csv_path), "--batches", "2",
            "--error-budget", "0.05", "--out", str(tmp_path / "nope"),
        )
        assert proc.returncode == 1
        assert "error budget" in proc.stderr

    def test_inspect_rejects_non_dataset(self, tmp_path):
        proc = run_module("inspect", str(tmp_path))
        assert proc.returncode == 1
        assert "error:" in proc.stderr


class TestFuzzColstore:
    def test_fuzz_includes_colstore_path(self, tmp_path):
        out = tmp_path / "fuzz.json"
        proc = run_module(
            "fuzz", "--queries", "4", "--rows", "600", "--seed", "5",
            "--colstore", "--no-shrink", "--out", str(out),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(out.read_text())
        assert "colstore" in report["paths"]
        assert report["divergences"] == 0
