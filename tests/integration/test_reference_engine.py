"""Differential testing: vectorized engine vs a row-at-a-time reference.

A deliberately naive, obviously-correct interpreter (python loops,
dictionaries, no numpy tricks) evaluates the same queries as the
vectorized engine; any disagreement is a bug in one of them.  Queries
are generated over a grid of features (filters, grouping, having,
scalar/keyed/set subqueries) and random seeds.
"""

import math

import numpy as np
import pytest

from repro.engine import BatchExecutor
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table


# ----------------------------------------------------------------------
# The reference interpreter (intentionally naive)
# ----------------------------------------------------------------------

def ref_rows(table):
    names = table.schema.names
    return [dict(zip(names, row)) for row in table.iter_rows()]


def ref_avg(values):
    return sum(values) / len(values) if values else 0.0


def ref_sum(values):
    return float(sum(values))


def ref_stdev(values):
    if len(values) < 2:
        return 0.0
    mean = ref_avg(values)
    return math.sqrt(
        sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    )


class Reference:
    """Hand-rolled evaluations of the test queries, one per shape."""

    def __init__(self, table):
        self.rows = ref_rows(table)

    def filtered(self, predicate):
        return [r for r in self.rows if predicate(r)]

    def scalar_threshold(self, column, factor=1.0):
        return factor * ref_avg([r[column] for r in self.rows])

    def keyed_threshold(self, key, column, factor=1.0):
        groups = {}
        for r in self.rows:
            groups.setdefault(r[key], []).append(r[column])
        return {k: factor * ref_avg(v) for k, v in groups.items()}

    def membership(self, key, column, threshold):
        sums = {}
        for r in self.rows:
            sums[r[key]] = sums.get(r[key], 0.0) + r[column]
        return {k for k, s in sums.items() if s > threshold}

    def group_aggregate(self, rows, key, column, fn):
        groups = {}
        for r in rows:
            groups.setdefault(r[key], []).append(r[column])
        return {k: fn(v) for k, v in groups.items()}


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

def make_table(seed, n=800):
    rng = np.random.default_rng(seed)
    return Table.from_columns({
        "k": rng.integers(0, 7, n).astype(np.int64),
        "x": rng.normal(10.0, 4.0, n).round(4),
        "y": rng.exponential(3.0, n).round(4),
    })


def execute(sql, table):
    cat = Catalog()
    cat.register("t", table, streamed=True)
    query = bind_statement(parse_sql(sql), cat)
    return BatchExecutor({"t": table}).execute(query)


SEEDS = [0, 1, 2, 3, 4]


@pytest.mark.parametrize("seed", SEEDS)
class TestDifferential:
    def test_global_aggregates(self, seed):
        table = make_table(seed)
        ref = Reference(table)
        out = execute(
            "SELECT COUNT(*) AS n, SUM(x) AS s, AVG(x) AS m, "
            "STDEV(x) AS sd FROM t WHERE y < 3",
            table,
        )
        kept = ref.filtered(lambda r: r["y"] < 3)
        xs = [r["x"] for r in kept]
        row = out.to_pylist()[0]
        assert row["n"] == len(kept)
        assert row["s"] == pytest.approx(ref_sum(xs), rel=1e-9)
        assert row["m"] == pytest.approx(ref_avg(xs), rel=1e-9)
        assert row["sd"] == pytest.approx(ref_stdev(xs), rel=1e-9)

    def test_group_by_having(self, seed):
        table = make_table(seed)
        ref = Reference(table)
        out = execute(
            "SELECT k, SUM(y) AS s FROM t GROUP BY k "
            "HAVING SUM(y) > 300 ORDER BY k",
            table,
        )
        sums = ref.group_aggregate(ref.rows, "k", "y", ref_sum)
        expected = sorted(
            (k, s) for k, s in sums.items() if s > 300
        )
        got = [(int(r["k"]), r["s"]) for r in out.to_pylist()]
        assert len(got) == len(expected)
        for (gk, gs), (ek, es) in zip(got, expected):
            assert gk == ek and gs == pytest.approx(es, rel=1e-9)

    def test_scalar_subquery(self, seed):
        table = make_table(seed)
        ref = Reference(table)
        out = execute(
            "SELECT AVG(y) AS m FROM t WHERE x > "
            "(SELECT 1.1 * AVG(x) FROM t)",
            table,
        )
        threshold = ref.scalar_threshold("x", 1.1)
        kept = ref.filtered(lambda r: r["x"] > threshold)
        assert out.to_pylist()[0]["m"] == pytest.approx(
            ref_avg([r["y"] for r in kept]), rel=1e-9
        )

    def test_keyed_subquery(self, seed):
        table = make_table(seed)
        ref = Reference(table)
        out = execute(
            "SELECT COUNT(*) AS n FROM t WHERE x < "
            "(SELECT 0.8 * AVG(x) FROM t u WHERE u.k = t.k)",
            table,
        )
        thresholds = ref.keyed_threshold("k", "x", 0.8)
        kept = ref.filtered(lambda r: r["x"] < thresholds[r["k"]])
        assert out.to_pylist()[0]["n"] == len(kept)

    def test_set_subquery(self, seed):
        table = make_table(seed)
        ref = Reference(table)
        out = execute(
            "SELECT SUM(x) AS s FROM t WHERE k IN "
            "(SELECT k FROM t GROUP BY k HAVING SUM(y) > 250)",
            table,
        )
        members = ref.membership("k", "y", 250.0)
        kept = ref.filtered(lambda r: r["k"] in members)
        assert out.to_pylist()[0]["s"] == pytest.approx(
            ref_sum([r["x"] for r in kept]), rel=1e-9
        )

    def test_compound_predicates(self, seed):
        table = make_table(seed)
        ref = Reference(table)
        out = execute(
            "SELECT COUNT(*) AS n FROM t "
            "WHERE (x > 8 AND y < 5) OR NOT k BETWEEN 2 AND 4",
            table,
        )
        kept = ref.filtered(
            lambda r: (r["x"] > 8 and r["y"] < 5) or not (2 <= r["k"] <= 4)
        )
        assert out.to_pylist()[0]["n"] == len(kept)

    def test_case_expression_aggregation(self, seed):
        table = make_table(seed)
        ref = Reference(table)
        out = execute(
            "SELECT AVG(CASE WHEN x > 10 THEN y ELSE 0 END) AS m FROM t",
            table,
        )
        values = [r["y"] if r["x"] > 10 else 0.0 for r in ref.rows]
        assert out.to_pylist()[0]["m"] == pytest.approx(
            ref_avg(values), rel=1e-9
        )

    def test_online_agrees_with_reference(self, seed):
        """Close the loop: reference -> exact -> online all agree."""
        from repro import GolaConfig, GolaSession

        table = make_table(seed)
        ref = Reference(table)
        session = GolaSession(
            GolaConfig(num_batches=4, bootstrap_trials=10, seed=seed)
        )
        session.register_table("t", table)
        query = session.sql(
            "SELECT AVG(y) AS m FROM t WHERE x > "
            "(SELECT AVG(x) FROM t)"
        )
        last = query.run_to_completion()
        threshold = ref.scalar_threshold("x")
        kept = ref.filtered(lambda r: r["x"] > threshold)
        assert last.estimate == pytest.approx(
            ref_avg([r["y"] for r in kept]), rel=1e-9
        )
