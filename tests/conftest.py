"""Shared fixtures: small deterministic tables, catalogs and sessions.

Also registers the Hypothesis profiles the CI matrix selects via the
``HYPOTHESIS_PROFILE`` environment variable:

* ``ci`` — derandomized (a PR re-run sees the same examples) with a
  fixed generous deadline so slow shared runners don't flake.
* ``nightly`` — many more examples per property, for the scheduled
  deep sweep; not derandomized, so every night explores new inputs.
* ``default`` — Hypothesis defaults for local development.
"""

import os

import numpy as np
import pytest
from hypothesis import settings

from repro import GolaConfig, GolaSession
from repro.storage import Catalog, Table

settings.register_profile(
    "ci", derandomize=True, deadline=2000, max_examples=100,
)
settings.register_profile(
    "nightly", deadline=None, max_examples=1000,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def small_table():
    """A 6-row mixed-type table used across storage/engine tests."""
    return Table.from_columns(
        {
            "id": np.array([1, 2, 3, 4, 5, 6], dtype=np.int64),
            "grp": np.array(["a", "b", "a", "b", "a", "c"], dtype=object),
            "x": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            "flag": np.array([True, False, True, False, True, False]),
        }
    )


@pytest.fixture
def sessions_table():
    """A deterministic 5k-row Sessions table with a real SBI effect."""
    rng = np.random.default_rng(42)
    n = 5000
    buffer_time = rng.exponential(30.0, n)
    play_time = rng.exponential(300.0, n) * np.exp(-0.02 * buffer_time)
    return Table.from_columns(
        {
            "session_id": np.arange(1, n + 1, dtype=np.int64),
            "buffer_time": buffer_time,
            "play_time": play_time,
        }
    )


@pytest.fixture
def catalog(sessions_table):
    cat = Catalog()
    cat.register("sessions", sessions_table)
    return cat


@pytest.fixture
def session(sessions_table):
    s = GolaSession(GolaConfig(num_batches=5, bootstrap_trials=30, seed=9))
    s.register_table("sessions", sessions_table)
    return s


SBI = (
    "SELECT AVG(play_time) FROM sessions "
    "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)"
)


@pytest.fixture
def sbi_sql():
    return SBI
