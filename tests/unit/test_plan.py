"""Unit tests for logical plan nodes and lineage-block analysis."""

import pytest

from repro.engine.aggregates import AggregateCall
from repro.errors import PlanError
from repro.expr.expressions import ColumnRef, Comparison, Literal, SubqueryRef
from repro.plan import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Project,
    Query,
    Scan,
    Sort,
    SubquerySpec,
    broadcast_edges,
    lineage_blocks,
)
from repro.storage import Column, ColumnType, Schema


def scan(names=("a", "b")):
    return Scan("t", Schema([Column(n, ColumnType.FLOAT64) for n in names]))


class TestPlanNodes:
    def test_filter_preserves_schema(self):
        node = Filter(scan(), Comparison(">", ColumnRef("a"), Literal(0)))
        assert node.schema.names == ["a", "b"]

    def test_project_schema(self):
        node = Project(scan(), [(ColumnRef("b"), "bb")])
        assert node.schema.names == ["bb"]

    def test_aggregate_schema(self):
        node = Aggregate(
            scan(), [(ColumnRef("a"), "a")],
            [AggregateCall("sum", ColumnRef("b"), "total")],
        )
        assert node.schema.names == ["a", "total"]
        assert not node.is_global

    def test_aggregate_requires_calls(self):
        with pytest.raises(PlanError):
            Aggregate(scan(), [], [])

    def test_join_duplicate_column_rejected(self):
        left = scan(("a", "b"))
        right = scan(("k", "b"))
        with pytest.raises(PlanError, match="duplicate"):
            Join(left, right, [("a", "k")])

    def test_join_schema_merges(self):
        left = scan(("a", "b"))
        right = scan(("k", "c"))
        node = Join(left, right, [("a", "k")])
        assert node.schema.names == ["a", "b", "c"]

    def test_join_requires_keys(self):
        with pytest.raises(PlanError):
            Join(scan(), scan(("k", "c")), [])

    def test_sort_validates_columns(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            Sort(scan(), [("nope", False)])

    def test_limit_negative_rejected(self):
        with pytest.raises(PlanError):
            Limit(scan(), -1)

    def test_describe_renders_tree(self):
        node = Limit(Filter(scan(), Literal(True)), 3)
        text = node.describe()
        assert "Limit(3)" in text and "Scan(t)" in text

    def test_subquery_slots_propagate(self):
        node = Filter(scan(), Comparison(">", ColumnRef("a"),
                                         SubqueryRef(4)))
        assert node.subquery_slots() == {4}


def make_query_with_subquery():
    inner = Project(
        Aggregate(scan(), [], [AggregateCall("avg", ColumnRef("a"), "v")]),
        [(ColumnRef("v"), "value")],
    )
    outer = Project(
        Aggregate(
            Filter(scan(), Comparison(">", ColumnRef("a"), SubqueryRef(0))),
            [], [AggregateCall("avg", ColumnRef("b"), "out")],
        ),
        [(ColumnRef("out"), "out")],
    )
    return Query(
        plan=outer,
        subqueries={0: SubquerySpec(0, inner, "scalar", "value")},
        streamed_table="t",
    )


class TestLineageBlocks:
    def test_blocks_and_order(self):
        blocks = lineage_blocks(make_query_with_subquery())
        assert [b.block_id for b in blocks] == ["sub#0", "main"]
        assert blocks[0].produces == 0
        assert blocks[1].consumes == frozenset({0})

    def test_broadcast_edges(self):
        blocks = lineage_blocks(make_query_with_subquery())
        edges = broadcast_edges(blocks)
        assert edges["main"] == frozenset({"sub#0"})
        assert edges["sub#0"] == frozenset()

    def test_nested_aggregate_in_block_rejected(self):
        inner_agg = Aggregate(
            scan(), [], [AggregateCall("avg", ColumnRef("a"), "v")]
        )
        double = Aggregate(
            inner_agg, [], [AggregateCall("sum", ColumnRef("v"), "s")]
        )
        query = Query(plan=double, subqueries={}, streamed_table="t")
        with pytest.raises(PlanError, match="single SPJA"):
            lineage_blocks(query)

    def test_cyclic_subqueries_detected(self):
        inner = Project(
            Aggregate(
                Filter(scan(), Comparison(">", ColumnRef("a"),
                                          SubqueryRef(0))),
                [], [AggregateCall("avg", ColumnRef("a"), "v")],
            ),
            [(ColumnRef("v"), "value")],
        )
        query = Query(
            plan=scan(),
            subqueries={0: SubquerySpec(0, inner, "scalar", "value")},
        )
        with pytest.raises(PlanError, match="cyclic"):
            query.subquery_order()

    def test_keyed_spec_requires_key_column(self):
        with pytest.raises(PlanError, match="key_column"):
            SubquerySpec(0, scan(), "keyed", "value")

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown subquery kind"):
            SubquerySpec(0, scan(), "weird", "value")
