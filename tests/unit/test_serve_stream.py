"""Snapshot encoding and the replayable pub/sub stream."""

import json
import math
import threading

import pytest

from repro.serve import SnapshotStream, encode_snapshot


class TestEncodeSnapshot:
    def test_scalar_snapshot_record(self, session, sbi_sql):
        snapshots = list(session.sql(sbi_sql).run_online())
        record = encode_snapshot("q1", snapshots[0])
        assert record["type"] == "snapshot"
        assert record["query_id"] == "q1"
        assert record["batch"] == 1
        assert record["of"] == session.config.num_batches
        assert 0.0 < record["fraction"] <= 1.0
        assert record["estimate"] == pytest.approx(snapshots[0].estimate)
        assert record["lo"] <= record["estimate"] <= record["hi"]
        assert isinstance(record["rows"], list) and record["rows"]
        # Strict JSON round-trip: no NaN/Inf literals anywhere.
        line = json.dumps(record, sort_keys=True, allow_nan=False)
        assert json.loads(line)["estimate"] == record["estimate"]

    def test_python_scalars_not_numpy(self, session, sbi_sql):
        snapshot = next(iter(session.sql(sbi_sql).run_online()))
        record = encode_snapshot("q", snapshot)
        for row in record["rows"]:
            for value in row.values():
                assert type(value) in (int, float, str, bool, type(None))
        for err in record["errors"].values():
            for arr in err.values():
                assert all(
                    v is None or type(v) in (int, float) for v in arr
                )

    def test_grouped_snapshot_has_no_scalar_fields(self, session):
        sql = ("SELECT session_id % 3 AS g, AVG(play_time) FROM sessions "
               "GROUP BY session_id % 3")
        snapshot = next(iter(session.sql(sql).run_online()))
        record = encode_snapshot("q", snapshot)
        assert "estimate" not in record
        assert len(record["rows"]) == 3
        json.dumps(record, allow_nan=False)

    def test_nan_becomes_null(self):
        from repro.serve.stream import _json_safe

        assert _json_safe(float("nan")) is None
        assert _json_safe(float("inf")) is None
        assert _json_safe(2.5) == 2.5
        import numpy as np

        assert _json_safe(np.float64(3.0)) == 3.0
        assert _json_safe(np.float64(math.nan)) is None


class TestSnapshotStream:
    def test_replay_then_live_in_order(self):
        stream = SnapshotStream(maxsize=16)
        stream.publish({"n": 1})
        stream.publish({"n": 2})
        seen = []
        done = threading.Event()

        def consume():
            for record in stream.subscribe():
                seen.append(record["n"])
            done.set()

        t = threading.Thread(target=consume)
        t.start()
        stream.publish({"n": 3})
        stream.close(final={"n": 4})
        assert done.wait(5.0)
        t.join()
        assert seen == [1, 2, 3, 4]

    def test_subscribe_after_close_replays_history(self):
        stream = SnapshotStream()
        stream.publish({"n": 1})
        stream.close(final={"n": 2})
        assert [r["n"] for r in stream.subscribe()] == [1, 2]
        assert stream.closed

    def test_publish_after_close_raises(self):
        stream = SnapshotStream()
        stream.close()
        with pytest.raises(RuntimeError):
            stream.publish({"n": 1})
        stream.close()  # idempotent

    def test_backpressure_drops_oldest_for_slow_subscriber_only(self):
        stream = SnapshotStream(maxsize=2)
        ready = threading.Event()
        release = threading.Event()
        slow_seen = []

        def slow():
            for record in stream.subscribe():
                ready.set()
                release.wait(5.0)
                slow_seen.append(record["n"])

        t = threading.Thread(target=slow)
        stream.publish({"n": 1})
        t.start()
        assert ready.wait(5.0)
        # The subscriber holds record 1; its queue (size 2) overflows.
        for n in range(2, 7):
            stream.publish({"n": n})
        stream.close(final={"n": 99})
        release.set()
        t.join(5.0)
        assert stream.dropped > 0
        # Oldest records were dropped; delivery order is preserved.
        assert slow_seen == sorted(slow_seen)
        assert slow_seen[-1] == 99
        # History stays lossless for replay subscribers.
        assert [r["n"] for r in stream.history] == [1, 2, 3, 4, 5, 6, 99]

    def test_unsubscribe_on_generator_close(self):
        stream = SnapshotStream()
        sub = stream.subscribe()
        stream.publish({"n": 1})
        assert next(sub) == {"n": 1}
        sub.close()
        assert stream._subscribers == []

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            SnapshotStream(maxsize=0)
