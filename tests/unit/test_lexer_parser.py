"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_sql


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, 1.5 FROM t")
        kinds = [t.type for t in tokens]
        assert kinds == [TokenType.KEYWORD, TokenType.IDENT,
                         TokenType.SYMBOL, TokenType.NUMBER,
                         TokenType.KEYWORD, TokenType.IDENT, TokenType.EOF]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].value == "select"
        assert tokenize("SeLeCt")[0].value == "select"

    def test_string_literal_with_escape(self):
        tok = tokenize("'it''s'")[0]
        assert tok.type is TokenType.STRING and tok.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 .5 1e3 2.5e-2")
                  if t.type is TokenType.NUMBER]
        assert values == ["1", "2.5", ".5", "1e3", "2.5e-2"]

    def test_comments_skipped(self):
        tokens = tokenize("a -- comment\n b")
        idents = [t.value for t in tokens if t.type is TokenType.IDENT]
        assert idents == ["a", "b"]

    def test_multichar_symbols_greedy(self):
        symbols = [t.value for t in tokenize("<= >= != <> < >")
                   if t.type is TokenType.SYMBOL]
        assert symbols == ["<=", ">=", "!=", "<>", "<", ">"]

    def test_bad_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a @ b")

    def test_error_reports_line_and_column(self):
        with pytest.raises(ParseError, match="line 2"):
            tokenize("a\nb @")


class TestParserBasics:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b FROM t")
        assert len(stmt.items) == 2
        assert stmt.from_table.name == "t"

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t z")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_table.alias == "z"

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT a FROM t;").from_table.name == "t"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_sql("SELECT a FROM t extra stuff junk(")

    def test_where_group_having_order_limit(self):
        stmt = parse_sql(
            "SELECT g, SUM(x) FROM t WHERE x > 1 GROUP BY g "
            "HAVING SUM(x) > 10 ORDER BY g DESC LIMIT 5"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0][1] is True  # descending
        assert stmt.limit == 5

    def test_count_star(self):
        stmt = parse_sql("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, ast.Call) and call.star

    def test_join(self):
        stmt = parse_sql(
            "SELECT a FROM f JOIN d ON f.k = d.k"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].how == "inner"

    def test_left_join(self):
        stmt = parse_sql("SELECT a FROM f LEFT JOIN d ON f.k = d.k")
        assert stmt.joins[0].how == "left"


class TestParserExpressions:
    def _expr(self, text):
        return parse_sql(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_parens_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_or_precedence(self):
        stmt = parse_sql("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_not(self):
        stmt = parse_sql("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.Unary) and stmt.where.op == "not"

    def test_between(self):
        stmt = parse_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 2")
        assert isinstance(stmt.where, ast.BetweenExpr)

    def test_not_between(self):
        stmt = parse_sql("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse_sql("SELECT a FROM t WHERE g IN ('x', 'y')")
        assert isinstance(stmt.where, ast.InListExpr)
        assert len(stmt.where.options) == 2

    def test_in_subquery(self):
        stmt = parse_sql(
            "SELECT a FROM t WHERE k IN (SELECT k FROM u)"
        )
        assert isinstance(stmt.where, ast.InSelectExpr)

    def test_not_in_subquery(self):
        stmt = parse_sql(
            "SELECT a FROM t WHERE k NOT IN (SELECT k FROM u)"
        )
        assert stmt.where.negated

    def test_scalar_subquery(self):
        stmt = parse_sql(
            "SELECT a FROM t WHERE x > (SELECT AVG(x) FROM t)"
        )
        assert isinstance(stmt.where.right, ast.ScalarSelect)

    def test_nested_subqueries(self):
        stmt = parse_sql(
            "SELECT a FROM t WHERE x > (SELECT AVG(x) FROM t WHERE y > "
            "(SELECT AVG(y) FROM t))"
        )
        inner = stmt.where.right.select
        assert isinstance(inner.where.right, ast.ScalarSelect)

    def test_case_when(self):
        expr = self._expr(
            "CASE WHEN a > 1 THEN 'big' WHEN a > 0 THEN 'small' "
            "ELSE 'neg' END"
        )
        assert isinstance(expr, ast.CaseExpr)
        assert len(expr.whens) == 2 and expr.otherwise is not None

    def test_unary_minus(self):
        expr = self._expr("-a")
        assert isinstance(expr, ast.Unary) and expr.op == "-"

    def test_distinct_aggregate_flag(self):
        expr = self._expr("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_string_and_bool_literals(self):
        assert self._expr("'hi'").value == "hi"
        assert self._expr("true").value is True

    def test_qualified_idents(self):
        expr = self._expr("s.col")
        assert expr.parts == ("s", "col")

    def test_function_call_args(self):
        expr = self._expr("power(a, 2)")
        assert expr.name == "power" and len(expr.args) == 2

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a")

    def test_case_without_when(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT CASE ELSE 1 END FROM t")

    def test_limit_requires_number(self):
        with pytest.raises(ParseError, match="LIMIT"):
            parse_sql("SELECT a FROM t LIMIT x")
