"""The concurrent query scheduler: admission, fairness, control, faults.

Small 5-batch queries over the shared ``session`` fixture keep these
fast; the heavy 8-query bit-identity acceptance run lives in
``tests/integration/test_serve_concurrent.py``.
"""

import dataclasses
import time

import pytest

from repro import (
    AdmissionError,
    FaultsConfig,
    GolaConfig,
    GolaSession,
    InjectedFault,
    ParseError,
    ServeConfig,
)
from repro.serve import (
    CANCELLED,
    DONE,
    EXPIRED,
    FAILED,
    PAUSED,
    RUNNING,
    QueryScheduler,
)

from .test_step_api import fingerprint


def wait_for(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def scheduler(session):
    sched = QueryScheduler(session)
    yield sched
    sched.close()


class TestServeConfigParse:
    def test_parse_spec(self):
        serve = ServeConfig.parse(
            "max_concurrent=8,queue_depth=32,port=9000,scan_cache=false,"
            "default_deadline_s=1.5"
        )
        assert serve.max_concurrent == 8
        assert serve.queue_depth == 32
        assert serve.port == 9000
        assert serve.scan_cache is False
        assert serve.default_deadline_s == 1.5

    def test_parse_rejects_unknown_and_invalid(self):
        with pytest.raises(ValueError):
            ServeConfig.parse("bogus=1")
        with pytest.raises(ValueError):
            ServeConfig.parse("max_concurrent=0")

    def test_embedded_in_gola_config(self):
        config = GolaConfig(serve=ServeConfig(max_concurrent=2))
        assert config.serve.max_concurrent == 2


class TestCompletion:
    def test_single_query_matches_serial(self, scheduler, session, sbi_sql):
        serial = fingerprint(session.sql(sbi_sql).run_online())
        run = scheduler.submit(sbi_sql)
        assert scheduler.wait(run.id, timeout=30.0)
        assert run.state == DONE
        assert fingerprint(run.snapshots) == serial
        # The stream carries one record per batch plus the end record.
        history = run.stream.history
        assert len(history) == len(serial) + 1
        assert history[-1]["type"] == "end"
        assert history[-1]["state"] == DONE

    def test_concurrent_queries_share_scan_cache(self, scheduler, sbi_sql):
        a = scheduler.submit(sbi_sql)
        b = scheduler.submit("SELECT AVG(buffer_time) FROM sessions")
        assert scheduler.wait(timeout=30.0)
        assert a.state == DONE and b.state == DONE
        stats = scheduler.scan_cache.stats
        assert stats["misses"] == 1 and stats["hits"] >= 1

    def test_target_rsd_stops_early(self, scheduler, sbi_sql):
        run = scheduler.submit(sbi_sql, target_rsd=10.0)  # trivially met
        assert scheduler.wait(run.id, timeout=30.0)
        assert run.state == DONE
        assert run.reason == "target"
        assert len(run.snapshots) == 1

    def test_status_and_metrics(self, scheduler, session, sbi_sql):
        run = scheduler.submit(sbi_sql)
        assert scheduler.wait(run.id, timeout=30.0)
        status = scheduler.status(run.id)
        assert status["state"] == DONE
        assert status["batches_done"] == session.config.num_batches
        assert status["estimate"] == pytest.approx(
            run.snapshots[-1].estimate
        )
        counters = scheduler.metrics_snapshot().counters
        assert counters["serve.submitted"] == 1
        assert counters["scheduler.admitted"] == 1
        assert counters["scheduler.done"] == 1
        assert counters["scheduler.steps"] == session.config.num_batches

    def test_bad_sql_rejected_at_submit(self, scheduler):
        with pytest.raises(ParseError):
            scheduler.submit("SELEKT nope")
        with pytest.raises(KeyError):
            scheduler.status("q99")


class TestAdmission:
    def test_queue_depth_rejects(self, session, sbi_sql):
        serve = ServeConfig(max_concurrent=1, queue_depth=1)
        sched = QueryScheduler(session, serve=serve)
        try:
            first = sched.submit(sbi_sql)
            assert wait_for(lambda: first.state == RUNNING)
            sched.pause(first.id)  # hold the only run slot
            sched.submit(sbi_sql)  # fills the queue
            with pytest.raises(AdmissionError):
                sched.submit(sbi_sql)
            counters = sched.metrics_snapshot().counters
            assert counters["scheduler.rejected"] == 1
            sched.resume(first.id)
            assert sched.wait(timeout=30.0)
        finally:
            sched.close()

    def test_submit_after_close_rejected(self, session, sbi_sql):
        sched = QueryScheduler(session)
        sched.close()
        with pytest.raises(AdmissionError):
            sched.submit(sbi_sql)

    def test_injected_submit_fault(self, sessions_table, sbi_sql):
        config = GolaConfig(
            num_batches=5, bootstrap_trials=20, seed=9,
            faults=FaultsConfig(enabled=True, submit_failure_prob=1.0,
                                max_retries=0),
        )
        s = GolaSession(config)
        s.register_table("sessions", sessions_table)
        sched = QueryScheduler(s)
        try:
            with pytest.raises(InjectedFault, match="serve.submit"):
                sched.submit(sbi_sql)
            counters = sched.metrics_snapshot().counters
            assert counters["serve.submit_failures"] == 1
        finally:
            sched.close()


class TestControl:
    def test_pause_blocks_progress_resume_completes(self, session, sbi_sql):
        sched = QueryScheduler(session)
        try:
            run = sched.submit(sbi_sql)
            assert wait_for(lambda: run.snapshots)
            sched.pause(run.id)
            assert run.state == PAUSED
            time.sleep(0.1)  # pause binds at the next step boundary:
            seen = len(run.snapshots)  # let any in-flight step land
            time.sleep(0.15)
            assert len(run.snapshots) == seen  # no steps while paused
            sched.resume(run.id)
            assert sched.wait(run.id, timeout=30.0)
            assert run.state == DONE
            assert len(run.snapshots) == session.config.num_batches
        finally:
            sched.close()

    def test_cancel_mid_run(self, session, sessions_table, sbi_sql):
        config = dataclasses.replace(session.config, num_batches=50)
        sched = QueryScheduler(session)
        try:
            run = sched.submit(sbi_sql, config=config)
            assert wait_for(lambda: run.snapshots)
            status = sched.cancel(run.id)
            assert status["state"] == CANCELLED
            assert run.batches_done < 50
            end = run.stream.history[-1]
            assert end["type"] == "end" and end["state"] == CANCELLED
            # Cancelled runs release their mini-batch memory.
            assert run.controller._exec is None
        finally:
            sched.close()

    def test_cancel_queued_query(self, session, sbi_sql):
        serve = ServeConfig(max_concurrent=1, queue_depth=4)
        sched = QueryScheduler(session, serve=serve)
        try:
            first = sched.submit(sbi_sql)
            assert wait_for(lambda: first.state == RUNNING)
            sched.pause(first.id)
            queued = sched.submit(sbi_sql)
            status = sched.cancel(queued.id)
            assert status["state"] == CANCELLED
            assert queued.snapshots == []
            sched.resume(first.id)
            assert sched.wait(first.id, timeout=30.0)
        finally:
            sched.close()

    def test_deadline_expires_query(self, session, sbi_sql):
        config = dataclasses.replace(session.config, num_batches=200)
        sched = QueryScheduler(session)
        try:
            run = sched.submit(sbi_sql, config=config, deadline_s=0.05)
            assert sched.wait(run.id, timeout=30.0)
            assert run.state == EXPIRED
            assert run.reason == "deadline"
            assert run.batches_done < 200
            # Partial answer is still served: snapshots up to the cut.
            assert run.stream.history[-1]["state"] == EXPIRED
        finally:
            sched.close()

    def test_priority_weights_step_shares(self, session, sbi_sql):
        serve = ServeConfig(max_concurrent=4, max_steps_per_turn=2)
        config = dataclasses.replace(session.config, num_batches=8)
        sched = QueryScheduler(session, serve=serve)
        try:
            low = sched.submit(sbi_sql, config=config, priority=1)
            high = sched.submit(sbi_sql, config=config, priority=2)
            assert sched.wait(timeout=60.0)
            # 2 steps/cycle vs 1 overcomes the head start of the earlier
            # submission: the high-priority query finishes first.
            assert sched.completed_order == [high.id, low.id]
        finally:
            sched.close()


class TestQuarantine:
    def test_step_fault_quarantines_only_that_query(
            self, session, sbi_sql):
        faulty = dataclasses.replace(
            session.config,
            faults=FaultsConfig(enabled=True, step_failure_prob=1.0,
                                max_retries=0),
        )
        serial = fingerprint(session.sql(sbi_sql).run_online())
        sched = QueryScheduler(session)
        try:
            bad = sched.submit(sbi_sql, config=faulty)
            good = sched.submit(sbi_sql)
            assert sched.wait(timeout=30.0)
            assert bad.state == FAILED
            assert "scheduler.step" in bad.error
            assert bad.snapshots == []
            # The healthy query is untouched — still serial-identical.
            assert good.state == DONE
            assert fingerprint(good.snapshots) == serial
            counters = sched.metrics_snapshot().counters
            assert counters["scheduler.quarantined"] == 1
            assert counters["scheduler.failed"] == 1
        finally:
            sched.close()

    def test_close_cancels_in_flight(self, session, sbi_sql):
        config = dataclasses.replace(session.config, num_batches=100)
        sched = QueryScheduler(session)
        run = sched.submit(sbi_sql, config=config)
        assert wait_for(lambda: run.snapshots)
        sched.close()
        assert run.is_terminal
        assert run.stream.closed
        sched.close()  # idempotent
