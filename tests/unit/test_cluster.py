"""Unit tests for the discrete-event kernel, cost model and simulator."""

import pytest

from repro import ClusterConfig
from repro.cluster import (
    ClusterSimulator,
    EventLoop,
    WorkerPool,
    broadcast_cost,
    task_durations,
)


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("late"))
        loop.schedule(1.0, lambda: order.append("early"))
        final = loop.run()
        assert order == ["early", "late"]
        assert final == 2.0

    def test_actions_can_schedule_more(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append(loop.now)
            loop.schedule(3.0, lambda: seen.append(loop.now))

        loop.schedule(1.0, first)
        loop.run()
        assert seen == [1.0, 4.0]

    def test_fifo_tie_break(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(1.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b"]

    def test_past_scheduling_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)


class TestWorkerPool:
    def test_parallel_speedup(self):
        serial = WorkerPool(1)
        parallel = WorkerPool(4)
        durations = [1.0] * 8
        assert serial.submit_all(durations) == pytest.approx(8.0)
        assert parallel.submit_all(durations) == pytest.approx(2.0)

    def test_longest_first_packing(self):
        pool = WorkerPool(2)
        makespan = pool.submit_all([3.0, 1.0, 1.0, 1.0])
        assert makespan == pytest.approx(3.0)

    def test_not_before(self):
        pool = WorkerPool(1)
        assert pool.submit(1.0, not_before=5.0) == pytest.approx(6.0)

    def test_needs_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestCostModel:
    def test_task_fanout(self):
        config = ClusterConfig(rows_per_task=100)
        durations = task_durations(250, config, bootstrap=False)
        assert len(durations) == 3
        total_rows_time = sum(durations) - 3 * config.task_overhead_s
        assert total_rows_time == pytest.approx(
            250 * config.per_tuple_cost_s
        )

    def test_bootstrap_overhead_applied(self):
        config = ClusterConfig()
        plain = sum(task_durations(10_000, config, bootstrap=False))
        boosted = sum(task_durations(10_000, config, bootstrap=True))
        rows_plain = plain - config.task_overhead_s
        rows_boost = boosted - config.task_overhead_s
        assert rows_boost / rows_plain == pytest.approx(
            1.0 + config.bootstrap_overhead_factor
        )

    def test_zero_rows_still_costs_overhead(self):
        config = ClusterConfig()
        assert task_durations(0, config) == [config.task_overhead_s]

    def test_broadcast_cost(self):
        config = ClusterConfig()
        assert broadcast_cost(3, config) == pytest.approx(
            3 * config.broadcast_cost_s
        )


class TestSimulator:
    def test_batch_latency_composition(self):
        sim = ClusterSimulator(ClusterConfig())
        batch = sim.simulate_batch(1, {"sub#0": 1000, "main": 1000})
        assert set(batch.stage_seconds) == {"sub#0", "main"}
        assert batch.total_seconds == pytest.approx(
            sum(batch.stage_seconds.values())
            + batch.broadcast_seconds + batch.overhead_seconds
        )

    def test_run_cumulative(self):
        sim = ClusterSimulator()
        run = sim.simulate_run([{"main": 100}] * 3)
        cum = run.cumulative_seconds
        assert len(cum) == 3
        assert cum[-1] == pytest.approx(run.total_seconds)
        assert cum == sorted(cum)

    def test_more_rows_take_longer(self):
        sim = ClusterSimulator()
        small = sim.simulate_batch(1, {"main": 1000}).total_seconds
        big = sim.simulate_batch(1, {"main": 10_000_000}).total_seconds
        assert big > small

    def test_batch_engine_has_no_bootstrap_overhead(self):
        # At paper scale the per-tuple cost dominates fixed overheads, so
        # the bootstrap multiplier shows through (~1.6x per pass).
        config = ClusterConfig()
        sim = ClusterSimulator(config)
        rows = 500_000_000
        batch_engine = sim.simulate_batch_engine(rows)
        online_pass = sim.simulate_batch(1, {"main": rows}).total_seconds
        assert online_pass > batch_engine * 1.4

    def test_first_answer_much_earlier_than_batch(self):
        """The Figure 3(a) shape: tiny first-batch latency vs full scan.

        The paper reports the first answer at ~1.6% of the batch-engine
        latency (2.3s vs 2.34min) for 100 mini-batches over ~100GB.
        """
        sim = ClusterSimulator()
        total_rows = 5_000_000_000
        k = 100
        first = sim.simulate_batch(1, {"main": total_rows // k})
        full = sim.simulate_batch_engine(total_rows)
        assert first.total_seconds < 0.05 * full
