"""Unit tests for the discrete-event kernel, cost model and simulator."""

import pytest

from repro import ClusterConfig, FaultsConfig
from repro.cluster import (
    ClusterSimulator,
    EventLoop,
    WorkerPool,
    broadcast_cost,
    task_durations,
)
from repro.faults import FaultInjector


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("late"))
        loop.schedule(1.0, lambda: order.append("early"))
        final = loop.run()
        assert order == ["early", "late"]
        assert final == 2.0

    def test_actions_can_schedule_more(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append(loop.now)
            loop.schedule(3.0, lambda: seen.append(loop.now))

        loop.schedule(1.0, first)
        loop.run()
        assert seen == [1.0, 4.0]

    def test_fifo_tie_break(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(1.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b"]

    def test_past_scheduling_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: loop.schedule_at(
            2.5, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [2.5]

    def test_schedule_at_clamps_float_jitter(self):
        """Accumulated float durations can land a few ULPs before `now`;
        such deltas must run immediately rather than raise."""
        loop = EventLoop()
        seen = []
        total = 0.1 + 0.1 + 0.1  # 0.30000000000000004

        def later():
            # 0.3 < loop.now by ~5.6e-17: within the clamp window.
            loop.schedule_at(0.3, lambda: seen.append(True))

        loop.schedule(total, later)
        loop.run()
        assert seen == [True]

    def test_schedule_at_truly_past_still_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)


class TestWorkerPool:
    def test_parallel_speedup(self):
        serial = WorkerPool(1)
        parallel = WorkerPool(4)
        durations = [1.0] * 8
        assert serial.submit_all(durations) == pytest.approx(8.0)
        assert parallel.submit_all(durations) == pytest.approx(2.0)

    def test_longest_first_packing(self):
        pool = WorkerPool(2)
        makespan = pool.submit_all([3.0, 1.0, 1.0, 1.0])
        assert makespan == pytest.approx(3.0)

    def test_not_before(self):
        pool = WorkerPool(1)
        assert pool.submit(1.0, not_before=5.0) == pytest.approx(6.0)

    def test_needs_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_heap_matches_linear_scan_placement(self):
        """The heap submit must reproduce the old O(W) min-scan exactly,
        including the lowest-free-worker tie-break."""
        import itertools

        for durations in itertools.permutations([3.0, 1.0, 2.0, 1.0, 4.0]):
            pool = WorkerPool(2)
            free = [0.0, 0.0]  # the old linear-scan model
            for d in durations:
                w = free.index(min(free))
                free[w] += d
                assert pool.submit(d) == pytest.approx(free[w])
            assert pool.makespan == pytest.approx(max(free))

    def test_makespan_tracks_last_finish(self):
        pool = WorkerPool(3)
        pool.submit(5.0)
        pool.submit(1.0)
        assert pool.makespan == pytest.approx(5.0)

    def test_reset(self):
        pool = WorkerPool(2)
        pool.submit_all([1.0, 2.0, 3.0])
        pool.reset()
        assert pool.makespan == 0.0
        assert pool.submit(1.0) == pytest.approx(1.0)


class TestCostModel:
    def test_task_fanout(self):
        config = ClusterConfig(rows_per_task=100)
        durations = task_durations(250, config, bootstrap=False)
        assert len(durations) == 3
        total_rows_time = sum(durations) - 3 * config.task_overhead_s
        assert total_rows_time == pytest.approx(
            250 * config.per_tuple_cost_s
        )

    def test_bootstrap_overhead_applied(self):
        config = ClusterConfig()
        plain = sum(task_durations(10_000, config, bootstrap=False))
        boosted = sum(task_durations(10_000, config, bootstrap=True))
        rows_plain = plain - config.task_overhead_s
        rows_boost = boosted - config.task_overhead_s
        assert rows_boost / rows_plain == pytest.approx(
            1.0 + config.bootstrap_overhead_factor
        )

    def test_zero_rows_still_costs_overhead(self):
        config = ClusterConfig()
        assert task_durations(0, config) == [config.task_overhead_s]

    def test_broadcast_cost(self):
        config = ClusterConfig()
        assert broadcast_cost(3, config) == pytest.approx(
            3 * config.broadcast_cost_s
        )


class TestSimulator:
    def test_batch_latency_composition(self):
        sim = ClusterSimulator(ClusterConfig())
        batch = sim.simulate_batch(1, {"sub#0": 1000, "main": 1000})
        assert set(batch.stage_seconds) == {"sub#0", "main"}
        assert batch.total_seconds == pytest.approx(
            sum(batch.stage_seconds.values())
            + batch.broadcast_seconds + batch.overhead_seconds
        )

    def test_run_cumulative(self):
        sim = ClusterSimulator()
        run = sim.simulate_run([{"main": 100}] * 3)
        cum = run.cumulative_seconds
        assert len(cum) == 3
        assert cum[-1] == pytest.approx(run.total_seconds)
        assert cum == sorted(cum)

    def test_more_rows_take_longer(self):
        sim = ClusterSimulator()
        small = sim.simulate_batch(1, {"main": 1000}).total_seconds
        big = sim.simulate_batch(1, {"main": 10_000_000}).total_seconds
        assert big > small

    def test_batch_engine_has_no_bootstrap_overhead(self):
        # At paper scale the per-tuple cost dominates fixed overheads, so
        # the bootstrap multiplier shows through (~1.6x per pass).
        config = ClusterConfig()
        sim = ClusterSimulator(config)
        rows = 500_000_000
        batch_engine = sim.simulate_batch_engine(rows)
        online_pass = sim.simulate_batch(1, {"main": rows}).total_seconds
        assert online_pass > batch_engine * 1.4

    # Small tasks so a 100k-row stage fans out to 20 of them.
    FANOUT = ClusterConfig(rows_per_task=5_000)

    def test_retries_inflate_latency(self):
        """Recovery cost must show in the simulated latency curve."""
        clean = ClusterSimulator(self.FANOUT).simulate_batch(
            1, {"main": 100_000}
        )
        # A generous retry budget: this test wants retries, not failure.
        config = FaultsConfig(enabled=True, seed=4, task_failure_prob=0.3,
                              max_retries=10)
        faulty_sim = ClusterSimulator(self.FANOUT,
                                      injector=FaultInjector(config))
        faulty = faulty_sim.simulate_batch(1, {"main": 100_000})
        assert faulty.retries > 0
        assert not faulty.failed
        assert faulty.total_seconds > clean.total_seconds

    def test_stragglers_speculated(self):
        config = FaultsConfig(enabled=True, seed=4, straggler_prob=0.2,
                              straggler_factor=20.0)
        with_spec = ClusterSimulator(
            self.FANOUT, injector=FaultInjector(config)
        ).simulate_batch(1, {"main": 100_000})
        no_spec = ClusterSimulator(
            self.FANOUT,
            injector=FaultInjector(
                FaultsConfig(enabled=True, seed=4, straggler_prob=0.2,
                             straggler_factor=20.0, speculate=False)
            ),
        ).simulate_batch(1, {"main": 100_000})
        assert with_spec.speculations > 0
        # Speculation caps straggler runtime, so the batch finishes sooner.
        assert with_spec.total_seconds < no_spec.total_seconds

    def test_exhausted_retries_fail_batch_and_halt_stages(self):
        config = FaultsConfig(enabled=True, seed=4, task_failure_prob=1.0,
                              max_retries=1)
        sim = ClusterSimulator(injector=FaultInjector(config))
        batch = sim.simulate_batch(1, {"sub#0": 10_000, "main": 10_000})
        assert batch.failed
        # Downstream stages never run once a stage fails permanently.
        assert set(batch.stage_seconds) == {"sub#0"}
        run = sim.simulate_run([{"main": 1000}])
        assert run.failed_batches == [1]

    def test_disabled_faults_identical_latency(self):
        clean = ClusterSimulator().simulate_batch(1, {"main": 50_000})
        off = ClusterSimulator(
            injector=FaultInjector(FaultsConfig())
        ).simulate_batch(1, {"main": 50_000})
        assert off.total_seconds == clean.total_seconds
        assert off.retries == 0 and not off.failed

    def test_same_fault_seed_same_latency(self):
        def run():
            config = FaultsConfig(enabled=True, seed=9,
                                  task_failure_prob=0.2,
                                  straggler_prob=0.1)
            sim = ClusterSimulator(injector=FaultInjector(config))
            return sim.simulate_run([{"main": 20_000}] * 3)

        a, b = run(), run()
        assert a.batch_seconds == b.batch_seconds
        assert a.total_retries == b.total_retries

    def test_first_answer_much_earlier_than_batch(self):
        """The Figure 3(a) shape: tiny first-batch latency vs full scan.

        The paper reports the first answer at ~1.6% of the batch-engine
        latency (2.3s vs 2.34min) for 100 mini-batches over ~100GB.
        """
        sim = ClusterSimulator()
        total_rows = 5_000_000_000
        k = 100
        first = sim.simulate_batch(1, {"main": total_rows // k})
        full = sim.simulate_batch_engine(total_rows)
        assert first.total_seconds < 0.05 * full
