"""Additional baseline coverage: grouped OLA, CDM with joins."""

import numpy as np
import pytest

from repro import GolaConfig
from repro.baselines import ClassicalDeltaMaintenance, ClassicalOLA
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table


@pytest.fixture
def data():
    rng = np.random.default_rng(55)
    n = 2400
    fact = Table.from_columns({
        "k": rng.integers(0, 6, n).astype(np.int64),
        "x": rng.normal(30.0, 6.0, n),
    })
    dim = Table.from_columns({
        "k": np.arange(6, dtype=np.int64),
        "zone": np.array(["a", "a", "a", "b", "b", "b"], dtype=object),
    })
    cat = Catalog()
    cat.register("fact", fact, streamed=True)
    cat.register("dim", dim, streamed=False)
    return cat, fact, dim


class TestGroupedOLA:
    def test_grouped_running_means(self, data):
        cat, fact, _ = data
        query = bind_statement(
            parse_sql("SELECT k, AVG(x) AS m FROM fact GROUP BY k"), cat
        )
        ola = ClassicalOLA(
            query, {"fact": fact},
            GolaConfig(num_batches=4, bootstrap_trials=8, seed=1),
        )
        snaps = list(ola.run())
        final = snaps[-1]
        for key, est in zip(final.group_keys, final.estimates["m"]):
            mask = fact["k"] == key
            assert est == pytest.approx(fact["x"][mask].mean(), rel=1e-9)

    def test_grouped_intervals_bracket_estimates(self, data):
        cat, fact, _ = data
        query = bind_statement(
            parse_sql("SELECT k, AVG(x) AS m FROM fact GROUP BY k"), cat
        )
        ola = ClassicalOLA(
            query, {"fact": fact},
            GolaConfig(num_batches=4, bootstrap_trials=8, seed=1),
        )
        for snap in ola.run():
            assert (snap.lows["m"] <= snap.estimates["m"]).all()
            assert (snap.estimates["m"] <= snap.highs["m"]).all()


class TestCdmWithJoin:
    def test_join_plus_nested_aggregate(self, data):
        cat, fact, dim = data
        sql = ("SELECT zone, COUNT(*) AS n FROM fact "
               "JOIN dim ON fact.k = dim.k "
               "WHERE x > (SELECT AVG(x) FROM fact) "
               "GROUP BY zone ORDER BY zone")
        query = bind_statement(parse_sql(sql), cat)
        config = GolaConfig(num_batches=3, bootstrap_trials=8, seed=2)
        cdm = ClassicalDeltaMaintenance(
            query, {"fact": fact, "dim": dim}, config
        )
        snaps = list(cdm.run())
        # Final answer equals the full exact computation.
        inner = fact["x"].mean()
        zone_of = dict(zip(dim["k"], dim["zone"]))
        counts = {"a": 0, "b": 0}
        for k, x in zip(fact["k"], fact["x"]):
            if x > inner:
                counts[zone_of[k]] += 1
        got = {r["zone"]: r["n"] for r in snaps[-1].table.to_pylist()}
        assert got == counts

    def test_rows_accounting_has_both_blocks(self, data):
        cat, fact, dim = data
        sql = ("SELECT COUNT(*) FROM fact "
               "WHERE x > (SELECT AVG(x) FROM fact)")
        query = bind_statement(parse_sql(sql), cat)
        config = GolaConfig(num_batches=3, bootstrap_trials=8, seed=2)
        cdm = ClassicalDeltaMaintenance(query, {"fact": fact}, config)
        snap = next(iter(cdm.run()))
        assert set(snap.rows_processed) == {"sub#0", "main"}
        assert snap.total_rows_processed == sum(
            snap.rows_processed.values()
        )
