"""Unit tests for per-trial evaluation of the uncertain set.

With ``trial_aware_uncertain`` each bootstrap trial folds the uncertain
tuples IT would keep under its own inner-aggregate replica — capturing
inner-selection uncertainty in the error bars, like the paper's
per-trial query recomputation.
"""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession
from repro.workloads import generate_sessions

SBI = (
    "SELECT AVG(play_time) FROM sessions "
    "WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)"
)
KEYED = (
    "SELECT AVG(play_time) FROM sessions WHERE buffer_time > "
    "(SELECT 1.2 * AVG(buffer_time) FROM sessions s "
    "WHERE s.session_id = sessions.session_id)"
)


def run(sql, trial_aware, n=4000, seed=3, batches=5):
    session = GolaSession(
        GolaConfig(num_batches=batches, bootstrap_trials=40, seed=seed,
                   trial_aware_uncertain=trial_aware)
    )
    table = generate_sessions(n, seed=11)
    # Coarsen session_id into a reusable group key for the keyed query.
    table = table.with_column(
        "session_id", (table["session_id"] % 50).astype(np.int64)
    )
    session.register_table("sessions", table)
    query = session.sql(sql)
    snaps = list(query.run_online())
    exact = session.execute_batch(query)
    return snaps, float(exact.column(exact.schema.names[0])[0])


class TestTrialAware:
    def test_point_estimates_unchanged(self):
        """Trial-aware evaluation only affects error bars, not answers."""
        on, _ = run(SBI, trial_aware=True)
        off, _ = run(SBI, trial_aware=False)
        for a, b in zip(on, off):
            assert a.estimate == pytest.approx(b.estimate, rel=1e-12)

    def test_final_still_exact(self):
        snaps, truth = run(SBI, trial_aware=True)
        assert snaps[-1].estimate == pytest.approx(truth, rel=1e-9)

    def test_intervals_differ_from_shared_mask(self):
        """The per-trial masks must actually change the replicas."""
        on, _ = run(SBI, trial_aware=True)
        off, _ = run(SBI, trial_aware=False)
        widths_on = [s.interval.width for s in on[:-1]]
        widths_off = [s.interval.width for s in off[:-1]]
        assert widths_on != widths_off

    def test_keyed_query_supported(self):
        snaps, truth = run(KEYED, trial_aware=True)
        assert snaps[-1].estimate == pytest.approx(truth, rel=1e-9)
        assert snaps[0].interval.width > 0

    def test_coverage_not_degraded(self):
        hits = total = 0
        for seed in range(5):
            snaps, truth = run(SBI, trial_aware=True, seed=seed)
            for snap in snaps[:-1]:
                total += 1
                hits += snap.interval.contains(truth)
        assert hits / total >= 0.8

    def test_membership_query_falls_back_to_point(self):
        """Set slots use point membership per trial (documented)."""
        session = GolaSession(
            GolaConfig(num_batches=4, bootstrap_trials=16, seed=5,
                       trial_aware_uncertain=True)
        )
        rng = np.random.default_rng(0)
        n = 2000
        from repro import Table

        session.register_table("t", Table.from_columns({
            "k": rng.integers(0, 40, n).astype(np.int64),
            "x": rng.exponential(5.0, n),
        }))
        query = session.sql(
            "SELECT SUM(x) FROM t WHERE k IN "
            "(SELECT k FROM t GROUP BY k HAVING SUM(x) > 200)"
        )
        last = query.run_to_completion()
        exact = session.execute_batch(query)
        assert last.estimate == pytest.approx(
            float(exact.column(exact.schema.names[0])[0]), rel=1e-9
        )
