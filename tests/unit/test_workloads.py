"""Unit tests for the workload generators and query texts."""

import numpy as np
import pytest

from repro.sql import parse_sql
from repro.workloads import (
    ADSTREAM_QUERIES,
    CONVIVA_QUERIES,
    SBI_QUERY,
    TAXI_QUERIES,
    TPCH_QUERIES,
    figure1_table,
    generate_adstream,
    generate_conviva,
    generate_sessions,
    generate_taxi,
    generate_tpch,
)


class TestSessions:
    def test_shape_and_determinism(self):
        a = generate_sessions(1000, seed=5)
        b = generate_sessions(1000, seed=5)
        assert a.num_rows == 1000
        np.testing.assert_array_equal(a["play_time"], b["play_time"])

    def test_buffering_impact_negative_correlation(self):
        t = generate_sessions(20_000, seed=1, buffering_impact=0.8)
        corr = np.corrcoef(t["buffer_time"], t["play_time"])[0, 1]
        assert corr < -0.1

    def test_zero_impact_uncorrelated(self):
        t = generate_sessions(20_000, seed=1, buffering_impact=0.0)
        corr = np.corrcoef(t["buffer_time"], t["play_time"])[0, 1]
        assert abs(corr) < 0.05

    def test_sbi_effect_present(self):
        """Slow-buffering sessions really play less (the paper's story)."""
        t = generate_sessions(20_000, seed=2)
        threshold = t["buffer_time"].mean()
        slow = t["play_time"][t["buffer_time"] > threshold].mean()
        overall = t["play_time"].mean()
        assert slow < overall

    def test_figure1_rows(self):
        t = figure1_table()
        assert t.num_rows == 6
        assert t["buffer_time"].tolist() == [36, 58, 17, 56, 19, 26]

    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            generate_sessions(0)


class TestConviva:
    def test_columns(self):
        t = generate_conviva(500, seed=1)
        for col in ("session_id", "content_id", "geo", "buffer_time",
                    "play_time", "join_failure", "bitrate_kbps"):
            assert col in t.schema

    def test_content_popularity_skewed(self):
        t = generate_conviva(20_000, seed=1, num_contents=100)
        _, counts = np.unique(t["content_id"], return_counts=True)
        assert counts.max() > 5 * np.median(counts)

    def test_failures_increase_with_buffering(self):
        t = generate_conviva(50_000, seed=2)
        threshold = np.median(t["buffer_time"])
        slow = t["join_failure"][t["buffer_time"] > threshold].mean()
        fast = t["join_failure"][t["buffer_time"] <= threshold].mean()
        assert slow > fast

    def test_per_content_buffering_varies(self):
        t = generate_conviva(50_000, seed=3, num_contents=50)
        means = [
            t["buffer_time"][t["content_id"] == c].mean()
            for c in range(1, 51)
        ]
        assert max(means) > 2 * min(means)


class TestTpch:
    def test_row_count_exact(self):
        t = generate_tpch(12_345, seed=1)
        assert t.num_rows == 12_345

    def test_order_lines_contiguous_customers(self):
        t = generate_tpch(5000, seed=1)
        keys = t["l_orderkey"]
        cust = t["o_custkey"]
        mapping = {}
        for k, c in zip(keys, cust):
            assert mapping.setdefault(k, c) == c  # stable per order

    def test_order_sums_bimodal_for_q18(self):
        t = generate_tpch(50_000, seed=2)
        sums = {}
        for k, q in zip(t["l_orderkey"], t["l_quantity"]):
            sums[k] = sums.get(k, 0.0) + q
        arr = np.array(list(sums.values()))
        over = (arr > 300).mean()
        assert 0.01 < over < 0.25  # threshold in the tail, non-empty
        # The contested band is thin relative to the tails.
        contested = ((arr > 150) & (arr < 450)).mean()
        assert contested < 0.15

    def test_part_quantity_regimes(self):
        t = generate_tpch(50_000, seed=3)
        qty = t["l_quantity"]
        part = t["l_partkey"]
        means = np.array([
            qty[part == p].mean() for p in np.unique(part)[:50]
        ])
        assert means.max() > 4 * means.min()

    def test_queries_parse(self):
        for sql in TPCH_QUERIES.values():
            parse_sql(sql)


class TestAdstream:
    def test_columns_and_determinism(self):
        a = generate_adstream(2000, seed=4)
        b = generate_adstream(2000, seed=4)
        np.testing.assert_array_equal(a["revenue"], b["revenue"])
        assert set(a["region"].tolist()) <= {"NA", "EU", "APAC", "LATAM"}

    def test_clicks_drive_revenue(self):
        t = generate_adstream(30_000, seed=5)
        clicked = t["revenue"][t["clicked"] == 1].mean()
        unclicked = t["revenue"][t["clicked"] == 0].mean()
        assert clicked > 10 * unclicked

    def test_queries_parse(self):
        for sql in ADSTREAM_QUERIES.values():
            parse_sql(sql)


class TestTaxi:
    def test_tables_and_determinism(self):
        a = generate_taxi(3000, seed=9)
        b = generate_taxi(3000, seed=9)
        assert set(a) == {"trips", "surcharges", "zones", "vendors"}
        assert a["trips"].num_rows == 3000
        assert a["surcharges"].num_rows == 1500
        np.testing.assert_array_equal(a["trips"]["fare"],
                                      b["trips"]["fare"])
        np.testing.assert_allclose(a["trips"]["tip"], b["trips"]["tip"],
                                   equal_nan=True)

    def test_tip_is_nan_heavy(self):
        t = generate_taxi(20_000, seed=10, nan_tip_fraction=0.25)
        frac = np.isnan(t["trips"]["tip"]).mean()
        assert 0.2 < frac < 0.3

    def test_zone_popularity_skewed(self):
        t = generate_taxi(50_000, seed=11)
        _, counts = np.unique(t["trips"]["zone_id"], return_counts=True)
        assert counts.max() > 5 * np.median(counts)

    def test_fares_heavy_tailed(self):
        t = generate_taxi(50_000, seed=12)
        fare = t["trips"]["fare"]
        assert np.quantile(fare, 0.95) > 2 * np.median(fare)

    def test_dimensions_cover_fact_keys(self):
        t = generate_taxi(5000, seed=13)
        assert set(t["trips"]["zone_id"]) <= set(t["zones"]["zone_id"])
        assert set(t["trips"]["vendor_id"]) <= \
            set(t["vendors"]["vendor_id"])
        assert set(t["surcharges"]["zone_id"]) <= \
            set(t["zones"]["zone_id"])

    def test_queries_parse(self):
        for sql in TAXI_QUERIES.values():
            parse_sql(sql)


class TestQueryTexts:
    def test_all_suites_parse(self):
        for sql in (SBI_QUERY, *CONVIVA_QUERIES.values(),
                    *TPCH_QUERIES.values(), *ADSTREAM_QUERIES.values(),
                    *TAXI_QUERIES.values()):
            parse_sql(sql)

    def test_suite_contents(self):
        assert set(CONVIVA_QUERIES) == {"C1", "C2", "C3"}
        assert set(TPCH_QUERIES) == {"Q11", "Q17", "Q18", "Q20"}
        assert set(TAXI_QUERIES) == {f"T{i}" for i in range(1, 11)}
