"""Serve telemetry units: prom exposition, convergence math, loadgen.

Covers the pieces behind ``GET /metrics`` and ``GET /queries/<id>/
telemetry`` in isolation: the Prometheus text encoder/parser pair, the
per-query time-to-±ε derivation over synthetic snapshot sequences, and
the load generator's seeded schedule.
"""

import math

import pytest

from repro.config import GolaConfig
from repro.core.session import GolaSession
from repro.obs import MetricsRegistry
from repro.serve.loadgen import LoadGenerator, LoadSpec
from repro.serve.telemetry import (
    EPSILONS,
    QueryTelemetry,
    ServeTelemetry,
    parse_prometheus,
    relative_half_width,
    render_prometheus,
)
from repro.workloads import generate_conviva, generate_sessions


def _snapshots(sql="SELECT AVG(play_time) FROM sessions", batches=6,
               rows=4000, seed=11):
    session = GolaSession(
        GolaConfig(num_batches=batches, bootstrap_trials=24, seed=seed)
    )
    session.register_table("sessions", generate_sessions(rows, seed=seed))
    session.register_table("conviva", generate_conviva(rows, seed=seed))
    return list(session.sql(sql).run_online())


class TestRelativeHalfWidth:
    def test_scalar(self, snapshots=None):
        snaps = _snapshots()
        widths = [relative_half_width(s) for s in snaps]
        assert all(w == w and w >= 0 for w in widths)
        # CI tightens as batches accumulate.
        assert widths[-1] < widths[0]
        expected = abs(snaps[-1].interval.high - snaps[-1].interval.low) \
            / (2.0 * abs(snaps[-1].estimate))
        assert widths[-1] == pytest.approx(expected)

    def test_group_by_uses_widest_cell(self):
        snaps = _snapshots(
            "SELECT geo, AVG(play_time) FROM conviva GROUP BY geo",
            batches=4,
        )
        width = relative_half_width(snaps[-1])
        assert width == width and width > 0


class TestQueryTelemetry:
    def _fake_clock(self):
        state = {"t": 100.0}

        def clock():
            return state["t"]

        return state, clock

    def test_time_to_epsilon_derivation(self):
        state, clock = self._fake_clock()
        telemetry = QueryTelemetry("q1", clock=clock)
        snaps = _snapshots(batches=8)
        for i, snap in enumerate(snaps):
            state["t"] = 100.0 + (i + 1) * 0.5
            telemetry.record_snapshot(snap)
        assert telemetry.first_answer_s == pytest.approx(0.5)
        summary = telemetry.summary("done", len(snaps))
        assert summary["snapshots"] == len(snaps)
        # time_to keys are serialized as "0.1"/"0.05"/"0.01" and each
        # recorded ε matches the first snapshot whose width reached it.
        for eps in EPSILONS:
            first = next(
                (
                    (i + 1) * 0.5
                    for i, snap in enumerate(snaps)
                    if relative_half_width(snap) <= eps
                ),
                None,
            )
            recorded = summary["time_to"].get(f"{eps:g}")
            if first is None:
                assert recorded is None
            else:
                assert recorded == pytest.approx(first)
        # Looser targets are reached no later than tighter ones.
        times = list(summary["time_to"].values())
        assert times == sorted(times)

    def test_stream_closes_with_summary(self):
        _, clock = self._fake_clock()
        telemetry = QueryTelemetry("q1", clock=clock)
        snap = _snapshots(batches=2)[0]
        telemetry.record_snapshot(snap)
        telemetry.finish("done", 2)
        records = list(telemetry.stream.subscribe())
        assert [r["type"] for r in records] == ["convergence", "summary"]
        assert records[0]["batch"] == 1
        assert records[0]["rel_width"] == pytest.approx(
            relative_half_width(snap)
        )
        assert records[1]["state"] == "done"


class TestServeTelemetryHub:
    class _Run:
        def __init__(self, qid):
            self.id = qid
            self.submitted_at = 0.0
            self.started_at = 0.0
            self.finished_at = None
            self.state = "done"
            self.batches_done = 0

    def test_disabled_hub_is_inert(self):
        hub = ServeTelemetry(MetricsRegistry(enabled=True), enabled=False)
        run = self._Run("q1")
        hub.on_submitted(run)
        with pytest.raises(KeyError):
            hub.get("q1")

    def test_snapshot_flow_feeds_histograms(self):
        state = {"t": 0.0}
        hub = ServeTelemetry(MetricsRegistry(enabled=True),
                             clock=lambda: state["t"])
        run = self._Run("q1")
        hub.on_submitted(run)
        state["t"] = 0.25
        hub.on_admitted(run)
        for i, snap in enumerate(_snapshots(batches=6)):
            state["t"] = 0.25 + (i + 1) * 0.1
            hub.on_snapshot(run, snap, step_s=0.1)
            run.batches_done = i + 1
        run.finished_at = state["t"]
        hub.on_finalized(run)
        metrics = hub.metrics.snapshot()
        assert metrics.histograms["serve.queue_wait_seconds"].count == 1
        assert metrics.histograms["serve.first_answer_seconds"].count == 1
        assert metrics.histograms["serve.step_seconds"].count == 6
        samples = hub.window_samples(now=state["t"])
        names = {name for name, _, _ in samples}
        assert "window_first_answer_seconds" in names
        assert "window_query_seconds" in names
        # The telemetry stream replays fully after finalize.
        records = list(hub.subscription("q1"))
        assert [r["type"] for r in records] == \
            ["convergence"] * 6 + ["summary"]


class TestPrometheusFormat:
    def _sample_snapshot(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("serve.snapshots").inc(5)
        registry.gauge("scheduler.queue_depth").set(2.0)
        hist = registry.histogram("serve.step seconds")  # sanitized name
        for value in (0.001, 0.002, 0.004, 0.2):
            hist.observe(value)
        return registry.snapshot()

    def test_round_trip(self):
        text = render_prometheus(
            self._sample_snapshot(),
            extra_samples=[
                ("window_step_seconds", {"window": "10s", "stat": "p95"},
                 0.004),
            ],
        )
        families = parse_prometheus(text)
        counter = families["repro_serve_snapshots_total"]
        assert counter.type == "counter"
        assert counter.samples[0][2] == 5
        gauge = families["repro_scheduler_queue_depth"]
        assert gauge.type == "gauge"
        assert gauge.samples[0][2] == 2.0
        hist = families["repro_serve_step_seconds"]
        assert hist.type == "histogram"
        buckets = [s for s in hist.samples if s[0].endswith("_bucket")]
        counts = [value for _, _, value in buckets]
        assert counts == sorted(counts)
        assert buckets[-1][1]["le"] == "+Inf"
        assert buckets[-1][2] == 4
        count = [s for s in hist.samples if s[0].endswith("_count")][0]
        assert count[2] == 4
        window = families["repro_window_step_seconds"]
        assert window.samples[0][1] == {"window": "10s", "stat": "p95"}
        # Quantiles re-derived from the cumulative buckets are within
        # one log bucket of the observed values.
        p50 = hist.histogram_quantile(0.5)
        assert 0.002 <= p50 <= 0.0023

    def test_rejects_malformed_input(self):
        for bad in (
            "metric_name not_a_number",
            "1leading_digit 3",
            "# TYPE repro_x mystery\nrepro_x 1",
            'metric{le="0.1",oops} 1',
        ):
            with pytest.raises(ValueError):
                parse_prometheus(bad)

    def test_type_after_samples_rejected(self):
        bad = "repro_x 1\n# TYPE repro_x gauge"
        with pytest.raises(ValueError):
            parse_prometheus(bad)

    def test_plain_comments_and_escapes_ok(self):
        text = ('# just a comment\n'
                'repro_x{msg="a\\"b\\\\c"} 1\n'
                'repro_y NaN\n'
                'repro_z +Inf\n')
        families = parse_prometheus(text)
        assert families["repro_x"].samples[0][1]["msg"] == 'a"b\\c'
        assert math.isnan(families["repro_y"].samples[0][2])
        assert families["repro_z"].samples[0][2] == math.inf


class TestTopDashboard:
    def test_render_from_parsed_metrics(self):
        from repro.frontends.top import render_dashboard

        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("serve.first_answer_seconds")
        for value in (0.01, 0.02, 0.05):
            hist.observe(value)
        text = render_prometheus(
            registry.snapshot(),
            extra_samples=[
                ("window_first_answer_seconds",
                 {"window": "10s", "stat": "rate"}, 1.5),
                ("window_first_answer_seconds",
                 {"window": "10s", "stat": "p95"}, 0.05),
            ],
        )
        frame = render_dashboard(
            health={
                "ok": True, "state": "serving", "uptime_s": 12.0,
                "scheduler": {
                    "running": 1, "queued": 2, "completed": 3,
                    "scan_cache": {"hits": 4, "misses": 1},
                },
            },
            queries=[{
                "id": "q1", "state": "running", "batches_done": 2,
                "num_batches": 10, "rel_stdev": 0.05,
            }],
            families=parse_prometheus(text),
        )
        assert "state=serving" in frame
        assert "running=1" in frame and "completed=3" in frame
        assert "scan cache: 4/5 hits" in frame
        assert "first answer" in frame and "n=3" in frame
        assert "last 10s" in frame
        assert "q1" in frame and "2/10" in frame

    def test_render_handles_empty_server(self):
        from repro.frontends.top import render_dashboard

        frame = render_dashboard(health={}, queries=[], families={})
        assert "repro top" in frame


class TestLoadSchedule:
    def test_deterministic_for_a_seed(self):
        spec = LoadSpec(seed=42, queries=30, abandon_prob=0.3)
        first = LoadGenerator(spec).schedule()
        second = LoadGenerator(spec).schedule()
        assert [
            (a.at_s, a.name, a.think_s, a.abandons) for a in first
        ] == [
            (a.at_s, a.name, a.think_s, a.abandons) for a in second
        ]
        # A different seed reshuffles the arrival process.
        other = LoadGenerator(
            LoadSpec(seed=43, queries=30, abandon_prob=0.3)
        ).schedule()
        assert [a.at_s for a in other] != [a.at_s for a in first]

    def test_schedule_shape(self):
        spec = LoadSpec(seed=7, queries=50, rate_qps=10.0)
        arrivals = LoadGenerator(spec).schedule()
        assert len(arrivals) == 50
        times = [a.at_s for a in arrivals]
        assert times == sorted(times)
        assert all(a.name in {"sbi", "avg_play", "avg_buffer"}
                   for a in arrivals)
        # Mean inter-arrival is roughly 1/rate for a Poisson process.
        mean_gap = times[-1] / len(times)
        assert 0.02 < mean_gap < 0.5

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(rate_qps=0.0)
        with pytest.raises(ValueError):
            LoadSpec(clients=0)
        with pytest.raises(ValueError):
            LoadSpec(mix=())
