"""The unsupported-query surface: clear, early, typed errors.

A production system's rejections matter as much as its acceptances;
every limitation documented in README/docs must fail with
UnsupportedQueryError (or a subclass-appropriate error) at bind or
compile time — never with an arbitrary crash mid-run.
"""

import numpy as np
import pytest

from repro import (
    GolaConfig,
    GolaSession,
    Table,
    UnsupportedQueryError,
)
from repro.errors import BindError, ParseError


@pytest.fixture
def session():
    rng = np.random.default_rng(44)
    s = GolaSession(GolaConfig(num_batches=3, bootstrap_trials=8))
    s.register_table("t", Table.from_columns({
        "k": rng.integers(0, 5, 300).astype(np.int64),
        "x": rng.normal(size=300),
    }))
    return s


class TestBindTimeRejections:
    def test_select_distinct(self, session):
        with pytest.raises(UnsupportedQueryError, match="DISTINCT"):
            session.sql("SELECT DISTINCT x FROM t")

    def test_distinct_unsupported_aggregate(self, session):
        with pytest.raises(UnsupportedQueryError, match="DISTINCT"):
            session.sql("SELECT MIN(DISTINCT x) FROM t")

    def test_non_aggregate_scalar_subquery(self, session):
        with pytest.raises(UnsupportedQueryError, match="aggregate"):
            session.sql(
                "SELECT AVG(x) FROM t WHERE x > (SELECT x FROM t)"
            )

    def test_multi_column_scalar_subquery(self, session):
        with pytest.raises(UnsupportedQueryError):
            session.sql(
                "SELECT AVG(x) FROM t WHERE x > "
                "(SELECT AVG(x), AVG(x) FROM t)"
            )

    def test_group_by_in_scalar_subquery(self, session):
        with pytest.raises(UnsupportedQueryError, match="correlate"):
            session.sql(
                "SELECT AVG(x) FROM t WHERE x > "
                "(SELECT AVG(x) FROM t GROUP BY k)"
            )

    def test_join_inside_subquery(self, session):
        session.register_table("d", Table.from_columns({
            "k": np.arange(5, dtype=np.int64),
        }), streamed=False)
        with pytest.raises(UnsupportedQueryError, match="join"):
            session.sql(
                "SELECT AVG(x) FROM t WHERE x > "
                "(SELECT AVG(x) FROM t JOIN d ON t.k = d.k)"
            )

    def test_correlated_in_subquery(self, session):
        with pytest.raises(UnsupportedQueryError, match="correlated"):
            session.sql(
                "SELECT AVG(x) FROM t WHERE k IN "
                "(SELECT k FROM t u WHERE u.k = t.k)"
            )

    def test_in_list_with_expressions(self, session):
        with pytest.raises(UnsupportedQueryError, match="literal"):
            session.sql("SELECT AVG(x) FROM t WHERE k IN (x + 1, 2)")

    def test_having_without_aggregates(self, session):
        with pytest.raises(BindError, match="aggregate"):
            session.sql("SELECT x FROM t HAVING x > 1")


class TestCompileTimeRejections:
    def test_plain_select_online(self, session):
        query = session.sql("SELECT x FROM t")
        with pytest.raises(UnsupportedQueryError, match="aggregate"):
            list(query.run_online())

    def test_udaf_online_rejected_with_guidance(self, session):
        session.register_udaf(
            "ident",
            init=lambda: 0.0,
            update=lambda s, v, w: s + float(np.sum(v * w)),
            merge=lambda a, b: a + b,
            finalize=lambda s, scale: s * scale,
        )
        query = session.sql("SELECT ident(x) FROM t")
        # Exact path works; online path explains itself.
        assert session.execute_batch(query) is not None
        with pytest.raises(UnsupportedQueryError, match="execute_batch"):
            list(query.run_online())

    def test_no_streamed_relation(self, session):
        session.catalog.set_streamed("t", False)
        query = session.sql("SELECT AVG(x) FROM t")
        with pytest.raises(UnsupportedQueryError, match="streamed"):
            list(query.run_online())


class TestParseRejections:
    @pytest.mark.parametrize("sql", [
        "SELECT FROM t",
        "SELECT x FROM",
        "SELECT x FROM t WHERE",
        "SELECT x FROM t GROUP BY",
        "SELECT x FROM t LIMIT lots",
        "SELECT CASE END FROM t",
        "SELECT (1 + FROM t",
    ])
    def test_malformed_sql(self, session, sql):
        with pytest.raises(ParseError):
            session.sql(sql)
