"""The controller's incremental step API and run-state release.

``run_online`` is now sugar over ``begin()`` / ``step()`` / ``is_done``
/ ``release()`` — the surface the serving scheduler interleaves.  These
tests pin (a) bit-identity between the generator and a manual step loop,
(b) the lifecycle errors, and (c) that finished/stopped runs release
their mini-batch memory (retained batches, uncertain caches, run state)
instead of pinning it for the session's lifetime.
"""

import pytest

from repro import CheckpointError, ExecutionError


def fingerprint(snapshots):
    """Everything user-visible in a snapshot stream, bitwise."""
    out = []
    for s in snapshots:
        out.append((
            s.batch_index,
            tuple(s.table.column(c).tobytes()
                  for c in s.table.schema.names),
            tuple(sorted(
                (name, err.lows.tobytes(), err.highs.tobytes())
                for name, err in s.errors.items()
            )),
            tuple(sorted(s.uncertain_sizes.items())),
            tuple(s.rebuilds),
            s.degraded,
        ))
    return out


def make_controller(session, sql):
    query = session.sql(sql)
    return session._make_controller(query.query, session.config)


class TestStepMatchesGenerator:
    def test_manual_step_loop_is_bit_identical(self, session, sbi_sql):
        serial = fingerprint(session.sql(sbi_sql).run_online())

        controller = make_controller(session, sbi_sql)
        controller.begin()
        stepped = []
        while not controller.is_done:
            snapshot = controller.step()
            assert snapshot is not None
            stepped.append(snapshot)
        controller.release()
        assert fingerprint(stepped) == serial

    def test_step_past_done_returns_none(self, session, sbi_sql):
        controller = make_controller(session, sbi_sql)
        controller.begin()
        while controller.step() is not None:
            pass
        assert controller.is_done
        assert controller.step() is None
        controller.release()

    def test_interleaving_two_controllers_is_bit_identical(
            self, session, sessions_table, sbi_sql):
        other_sql = "SELECT SUM(play_time) FROM sessions"
        serial_a = fingerprint(session.sql(sbi_sql).run_online())
        serial_b = fingerprint(session.sql(other_sql).run_online())

        a = make_controller(session, sbi_sql)
        b = make_controller(session, other_sql)
        a.begin()
        b.begin()
        got_a, got_b = [], []
        # Alternate steps: private RNG streams keep each run serial-equal.
        while not (a.is_done and b.is_done):
            snap = a.step()
            if snap is not None:
                got_a.append(snap)
            snap = b.step()
            if snap is not None:
                got_b.append(snap)
        a.release()
        b.release()
        assert fingerprint(got_a) == serial_a
        assert fingerprint(got_b) == serial_b


class TestLifecycle:
    def test_step_before_begin_raises(self, session, sbi_sql):
        controller = make_controller(session, sbi_sql)
        with pytest.raises(ExecutionError, match="begin"):
            controller.step()

    def test_is_done_before_begin(self, session, sbi_sql):
        controller = make_controller(session, sbi_sql)
        assert controller.is_done

    def test_stop_between_steps_ends_run(self, session, sbi_sql):
        controller = make_controller(session, sbi_sql)
        controller.begin()
        first = controller.step()
        assert first.batch_index == 1
        controller.stop()
        assert controller.is_done
        assert controller.step() is None
        controller.release()

    def test_begin_twice_restarts(self, session, sbi_sql):
        controller = make_controller(session, sbi_sql)
        controller.begin()
        controller.step()
        controller.begin()  # restart from scratch
        snapshot = controller.step()
        assert snapshot.batch_index == 1
        controller.release()


class TestMemoryRelease:
    def test_release_clears_run_and_block_state(self, session, sbi_sql):
        controller = make_controller(session, sbi_sql)
        controller.begin()
        while controller.step() is not None:
            pass
        controller.release()
        assert controller._run_state is None
        assert controller._exec is None
        for runtime in controller.runtimes.values():
            assert runtime.cache.size == 0
            assert runtime.presence_counts.size == 0

    def test_generator_end_releases(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        for _ in query.run_online():
            pass
        controller = query._controller
        assert controller._exec is None
        for runtime in controller.runtimes.values():
            assert runtime.cache.size == 0

    def test_stopped_query_releases(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        for snapshot in query.run_online():
            query.stop()
        controller = query._controller
        assert controller._exec is None
        for runtime in controller.runtimes.values():
            assert runtime.cache.size == 0

    def test_rerun_releases_superseded_controller(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        it = query.run_online()
        next(it)  # leave the first run mid-flight
        first = query._controller
        assert first._exec is not None
        second_snaps = list(query.run_online())
        assert first._exec is None  # superseded run no longer pins memory
        assert len(second_snaps) == session.config.num_batches

    def test_checkpoint_after_release_raises(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        for _ in query.run_online():
            pass
        with pytest.raises(CheckpointError):
            query.checkpoint()

    def test_checkpoint_mid_run_still_works(self, session, sbi_sql):
        controller = make_controller(session, sbi_sql)
        controller.begin()
        controller.step()
        ck = controller.checkpoint()
        assert ck.batch_index == 1
        controller.release()
        # Resume from it through the public generator path.
        resumed = list(
            session.sql(sbi_sql).run_online(resume_from=ck)
        )
        full = fingerprint(session.sql(sbi_sql).run_online())
        assert fingerprint(resumed) == full[1:]
