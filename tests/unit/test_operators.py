"""Direct unit tests for physical operators and grouping helpers."""

import numpy as np
import pytest

from repro.engine.aggregates import GroupIndex
from repro.engine.operators import (
    group_indices,
    run_aggregate,
    run_filter,
    run_limit,
    run_project,
    run_sort,
)
from repro.engine.aggregates import AggregateCall
from repro.expr.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Environment,
    Literal,
)
from repro.plan.logical import Aggregate, Filter, Limit, Project, Scan, Sort
from repro.storage import Table


@pytest.fixture
def table():
    return Table.from_columns({
        "g": np.array(["a", "b", "a", "c"], dtype=object),
        "h": np.array([1, 1, 2, 2], dtype=np.int64),
        "x": np.array([1.0, 2.0, 3.0, 4.0]),
    })


def scan_for(table):
    return Scan("t", table.schema)


class TestFilterProject:
    def test_filter(self, table):
        node = Filter(scan_for(table),
                      Comparison(">", ColumnRef("x"), Literal(2)))
        out = run_filter(node, table, Environment())
        assert out.column("x").tolist() == [3.0, 4.0]

    def test_filter_empty_input(self, table):
        node = Filter(scan_for(table), Literal(True))
        empty = Table.empty(table.schema)
        assert run_filter(node, empty, Environment()).num_rows == 0

    def test_project_broadcasts_scalars(self, table):
        node = Project(scan_for(table), [
            (ColumnRef("x"), "x"),
            (Literal(7), "seven"),
        ])
        out = run_project(node, table, Environment())
        assert out.column("seven").tolist() == [7, 7, 7, 7]

    def test_project_expression(self, table):
        node = Project(scan_for(table), [
            (BinaryOp("*", ColumnRef("x"), Literal(2)), "double"),
        ])
        out = run_project(node, table, Environment())
        assert out.column("double").tolist() == [2.0, 4.0, 6.0, 8.0]


class TestGroupIndices:
    def test_no_grouping_single_group(self, table):
        idx, index = group_indices(table, [], Environment())
        assert idx.tolist() == [0, 0, 0, 0]
        assert index.num_groups == 1

    def test_single_key(self, table):
        idx, index = group_indices(
            table, [(ColumnRef("g"), "g")], Environment()
        )
        assert index.num_groups == 3
        assert idx[0] == idx[2]  # both 'a'

    def test_multi_key_tuples(self, table):
        idx, index = group_indices(
            table, [(ColumnRef("g"), "g"), (ColumnRef("h"), "h")],
            Environment(),
        )
        assert index.num_groups == 4  # (a,1),(b,1),(a,2),(c,2)

    def test_extends_existing_index(self, table):
        index = GroupIndex()
        index.encode(np.array(["z"], dtype=object))
        idx, out = group_indices(
            table, [(ColumnRef("g"), "g")], Environment(), index
        )
        assert out is index and out.num_groups == 4
        assert out.index_of("z") == 0  # stable


class TestAggregateOperator:
    def test_grouped(self, table):
        node = Aggregate(
            scan_for(table), [(ColumnRef("g"), "g")],
            [AggregateCall("sum", ColumnRef("x"), "s")],
        )
        out = run_aggregate(node, table, Environment())
        rows = {r["g"]: r["s"] for r in out.to_pylist()}
        assert rows == {"a": 4.0, "b": 2.0, "c": 4.0}

    def test_global_empty_input_single_row(self, table):
        node = Aggregate(
            scan_for(table), [],
            [AggregateCall("count", None, "n")],
        )
        out = run_aggregate(node, Table.empty(table.schema), Environment())
        assert out.to_pylist() == [{"n": 0.0}]

    def test_having_filters_groups(self, table):
        node = Aggregate(
            scan_for(table), [(ColumnRef("g"), "g")],
            [AggregateCall("sum", ColumnRef("x"), "s")],
            having=Comparison(">", ColumnRef("s"), Literal(2.5)),
        )
        out = run_aggregate(node, table, Environment())
        assert sorted(out.column("g").tolist()) == ["a", "c"]

    def test_scale(self, table):
        node = Aggregate(
            scan_for(table), [],
            [AggregateCall("sum", ColumnRef("x"), "s")],
        )
        out = run_aggregate(node, table, Environment(), scale=3.0)
        assert out.to_pylist()[0]["s"] == pytest.approx(30.0)


class TestSortLimit:
    def test_sort(self, table):
        node = Sort(scan_for(table), [("x", True)])
        out = run_sort(node, table)
        assert out.column("x").tolist() == [4.0, 3.0, 2.0, 1.0]

    def test_limit_clamps(self, table):
        node = Limit(scan_for(table), 99)
        assert run_limit(node, table).num_rows == 4
        node2 = Limit(scan_for(table), 2)
        assert run_limit(node2, table).num_rows == 2


class TestExplain:
    def test_explain_shows_meta_plan(self, session, sbi_sql):
        text = session.sql(sbi_sql).explain()
        assert "online meta plan" in text
        assert "consumes #0" in text
        assert "Aggregate" in text
