"""Unit tests for guard strategy analysis and decision guards."""

import numpy as np
import pytest

from repro.core.delta import (
    _SetGuard,
    _analyze_guard,
)
from repro.core.uncertain import (
    TRI_FALSE,
    TRI_TRUE,
    TRI_UNKNOWN,
    KeyedSlotState,
    ScalarSlotState,
    SetSlotState,
)
from repro.engine.aggregates import GroupIndex
from repro.estimate import VariationRange
from repro.expr.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Environment,
    InSubquery,
    Literal,
    SubqueryRef,
)
from repro.core.classify import IntervalEnv
from repro.core.delta import CachedRows
from repro.storage import Table


def scalar_state(estimate, lo, hi, slot=0):
    return ScalarSlotState(
        slot=slot, estimate=estimate,
        replicas=np.array([lo, hi]),
        vrange=VariationRange(lo, hi),
    )


class TestAnalyzeGuard:
    def test_simple_scalar_comparison(self):
        pred = Comparison(">", ColumnRef("x"), SubqueryRef(0))
        kind, guard = _analyze_guard(pred)
        assert kind == "decision"
        assert guard.op == ">" and guard.correlation_name is None

    def test_flipped_sides(self):
        pred = Comparison("<", SubqueryRef(0), ColumnRef("x"))
        kind, guard = _analyze_guard(pred)
        assert kind == "decision"
        assert guard.op == ">"  # normalized: x > u

    def test_affine_uncertain_side(self):
        pred = Comparison(
            "<", ColumnRef("x"),
            BinaryOp("*", Literal(0.5), SubqueryRef(0)),
        )
        kind, guard = _analyze_guard(pred)
        assert kind == "decision"

    def test_keyed_correlation(self):
        pred = Comparison(
            ">", ColumnRef("x"),
            SubqueryRef(0, correlation=ColumnRef("k")),
        )
        kind, guard = _analyze_guard(pred)
        assert kind == "decision" and guard.correlation_name == "k"

    def test_in_subquery_is_set(self):
        kind, node = _analyze_guard(InSubquery(ColumnRef("k"), 1))
        assert kind == "set"

    def test_both_sides_uncertain_falls_back(self):
        pred = Comparison(">", SubqueryRef(0), SubqueryRef(1))
        kind, slots = _analyze_guard(pred)
        assert kind == "fallback" and slots == {0, 1}

    def test_equality_falls_back(self):
        pred = Comparison("=", ColumnRef("x"), SubqueryRef(0))
        kind, _ = _analyze_guard(pred)
        assert kind == "fallback"

    def test_row_columns_on_uncertain_side_fall_back(self):
        pred = Comparison(
            ">", ColumnRef("x"),
            BinaryOp("+", ColumnRef("y"), SubqueryRef(0)),
        )
        kind, _ = _analyze_guard(pred)
        assert kind == "fallback"

    def test_disjunction_falls_back(self):
        pred = BooleanOp("OR", [
            Comparison(">", ColumnRef("x"), SubqueryRef(0)),
            Comparison("<", ColumnRef("x"), Literal(0)),
        ])
        kind, _ = _analyze_guard(pred)
        assert kind == "fallback"


def cached(values, weights_width=2):
    n = len(values)
    return CachedRows(
        table=Table.from_columns({"x": np.asarray(values, dtype=float)}),
        weights=np.ones((n, weights_width)),
        group_idx=np.zeros(n, dtype=np.int64),
        values={"agg": np.asarray(values, dtype=float)},
    )


class TestDecisionGuardScalar:
    def make(self, op=">"):
        pred = Comparison(op, ColumnRef("x"), SubqueryRef(0))
        kind, guard = _analyze_guard(pred)
        assert kind == "decision"
        return guard

    def test_commit_and_pass_check(self):
        guard = self.make(">")
        rows = cached([1.0, 5.0, 9.0])
        tri = np.array([TRI_FALSE, TRI_UNKNOWN, TRI_TRUE], dtype=np.int8)
        state = scalar_state(5.0, 4.0, 6.0)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        ienv = IntervalEnv(slots={0: state},
                           point=Environment(scalars={0: 5.0}))
        assert guard.check({0: state}, ienv)

    def test_violation_when_point_crosses_true_fold(self):
        guard = self.make(">")
        rows = cached([9.0])
        tri = np.array([TRI_TRUE], dtype=np.int8)
        state = scalar_state(5.0, 4.0, 6.0)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        # Point estimate drifts ABOVE the folded-true row's value: the
        # decision "9 > u" is no longer point-correct.
        moved = scalar_state(9.5, 9.0, 10.0)
        ienv = IntervalEnv(slots={0: moved},
                           point=Environment(scalars={0: 9.5}))
        assert not guard.check({0: moved}, ienv)

    def test_violation_when_point_crosses_false_fold(self):
        guard = self.make(">")
        rows = cached([1.0])
        tri = np.array([TRI_FALSE], dtype=np.int8)
        state = scalar_state(5.0, 4.0, 6.0)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        moved = scalar_state(0.5, 0.2, 0.8)
        ienv = IntervalEnv(slots={0: moved},
                           point=Environment(scalars={0: 0.5}))
        assert not guard.check({0: moved}, ienv)

    def test_uncertain_rows_impose_nothing(self):
        guard = self.make(">")
        rows = cached([5.0])
        tri = np.array([TRI_UNKNOWN], dtype=np.int8)
        state = scalar_state(5.0, 4.0, 6.0)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        # Huge drift: still fine, nothing was folded.
        moved = scalar_state(100.0, 99.0, 101.0)
        ienv = IntervalEnv(slots={0: moved},
                           point=Environment(scalars={0: 100.0}))
        assert guard.check({0: moved}, ienv)

    def test_reset_clears_constraints(self):
        guard = self.make(">")
        rows = cached([9.0])
        tri = np.array([TRI_TRUE], dtype=np.int8)
        state = scalar_state(5.0, 4.0, 6.0)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        guard.reset()
        moved = scalar_state(9.5, 9.0, 10.0)
        ienv = IntervalEnv(slots={0: moved},
                           point=Environment(scalars={0: 9.5}))
        assert guard.check({0: moved}, ienv)

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">="])
    def test_all_ops_sound_on_margin(self, op):
        """Folds far from the value survive; crossings are caught."""
        guard = self.make(op)
        state = scalar_state(50.0, 45.0, 55.0)
        far_true = 100.0 if op in (">", ">=") else 0.0
        rows = cached([far_true])
        tri = np.array([TRI_TRUE], dtype=np.int8)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        ienv = IntervalEnv(slots={0: state},
                           point=Environment(scalars={0: 50.0}))
        assert guard.check({0: state}, ienv)
        # Strictly cross the folded value so even <=/>= flip.
        crossing = far_true + 1.0 if op in (">", ">=") else far_true - 1.0
        crossed = scalar_state(crossing, crossing - 0.5, crossing + 0.5)
        ienv2 = IntervalEnv(slots={0: crossed},
                            point=Environment(scalars={0: crossing}))
        assert not guard.check({0: crossed}, ienv2)


class TestDecisionGuardKeyed:
    def make_state(self, estimates, slot=0):
        index = GroupIndex()
        index.encode(np.arange(len(estimates), dtype=np.int64))
        estimates = np.asarray(estimates, dtype=float)
        return KeyedSlotState(
            slot=slot, index=index, estimates=estimates,
            replicas=np.repeat(estimates[:, None], 2, axis=1),
            lows=estimates - 1.0, highs=estimates + 1.0,
        )

    def make_guard(self):
        pred = Comparison(
            ">", ColumnRef("x"),
            SubqueryRef(0, correlation=ColumnRef("k")),
        )
        kind, guard = _analyze_guard(pred)
        assert kind == "decision"
        return guard

    def cached_keyed(self, xs, keys):
        n = len(xs)
        return CachedRows(
            table=Table.from_columns({
                "x": np.asarray(xs, dtype=float),
                "k": np.asarray(keys, dtype=np.int64),
            }),
            weights=np.ones((n, 2)),
            group_idx=np.zeros(n, dtype=np.int64),
            values={"agg": np.asarray(xs, dtype=float)},
        )

    def test_per_group_isolation(self):
        guard = self.make_guard()
        state = self.make_state([10.0, 100.0])
        rows = self.cached_keyed([20.0, 50.0], [0, 1])
        tri = np.array([TRI_TRUE, TRI_FALSE], dtype=np.int8)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        ienv = IntervalEnv(slots={0: state}, point=Environment())
        assert guard.check({0: state}, ienv)
        # Group 0 drifts above its folded-true row -> violation; group 1
        # drifting inside ITS safe region would not have mattered.
        drifted = self.make_state([25.0, 100.0])
        assert not guard.check({0: drifted},
                               IntervalEnv(slots={0: drifted},
                                           point=Environment()))

    def test_new_groups_are_vacuous(self):
        guard = self.make_guard()
        state = self.make_state([10.0])
        rows = self.cached_keyed([20.0], [0])
        tri = np.array([TRI_TRUE], dtype=np.int8)
        guard.commit(rows, tri, tri, {0: state}, Environment())
        grown = self.make_state([10.0, 1e9])  # new group, wild value
        assert guard.check({0: grown},
                           IntervalEnv(slots={0: grown},
                                       point=Environment()))


class TestSetGuard:
    def test_membership_commitments(self):
        guard = _SetGuard()
        guard.commit(np.array([1, 2, 3]),
                     np.array([TRI_TRUE, TRI_FALSE, TRI_UNKNOWN],
                              dtype=np.int8))
        ok = SetSlotState(slot=0, point_members={1, 9}, tri_status={})
        assert guard.check(ok)
        dropped = SetSlotState(slot=0, point_members={9}, tri_status={})
        assert not guard.check(dropped)  # committed-in key 1 left the set
        joined = SetSlotState(slot=0, point_members={1, 2}, tri_status={})
        assert not guard.check(joined)  # committed-out key 2 joined
