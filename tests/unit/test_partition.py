"""Unit tests for mini-batch partitioning and shuffling."""

import numpy as np
import pytest

from repro.storage import MiniBatchPartitioner, Table, batch_sizes, random_sample


@pytest.fixture
def numbered():
    return Table.from_columns({"v": np.arange(1000, dtype=np.int64)})


class TestPartitioner:
    def test_batches_cover_everything_once(self, numbered):
        parts = MiniBatchPartitioner(7, seed=3).partition(numbered)
        seen = np.concatenate([p.column("v") for p in parts])
        assert sorted(seen.tolist()) == list(range(1000))

    def test_uniform_sizes(self, numbered):
        parts = MiniBatchPartitioner(7, seed=3).partition(numbered)
        sizes = [p.num_rows for p in parts]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 1000

    def test_shuffle_randomizes_rows(self, numbered):
        parts = MiniBatchPartitioner(4, seed=3, shuffle=True).partition(
            numbered
        )
        assert parts[0].column("v").tolist() != list(range(250))

    def test_no_shuffle_randomizes_batch_order_only(self, numbered):
        parts = MiniBatchPartitioner(4, seed=3, shuffle=False).partition(
            numbered
        )
        # Each batch is a contiguous slice in storage order.
        for p in parts:
            values = p.column("v")
            assert (np.diff(values) == 1).all()

    def test_deterministic_under_seed(self, numbered):
        a = MiniBatchPartitioner(5, seed=11).partition(numbered)
        b = MiniBatchPartitioner(5, seed=11).partition(numbered)
        for x, y in zip(a, b):
            assert x.column("v").tolist() == y.column("v").tolist()

    def test_different_seeds_differ(self, numbered):
        a = MiniBatchPartitioner(5, seed=1).partition(numbered)
        b = MiniBatchPartitioner(5, seed=2).partition(numbered)
        assert a[0].column("v").tolist() != b[0].column("v").tolist()

    def test_single_batch(self, numbered):
        parts = MiniBatchPartitioner(1, seed=0).partition(numbered)
        assert len(parts) == 1 and parts[0].num_rows == 1000

    def test_more_batches_than_rows(self):
        tiny = Table.from_columns({"v": np.arange(3)})
        parts = MiniBatchPartitioner(5, seed=0).partition(tiny)
        assert sum(p.num_rows for p in parts) == 3

    def test_invalid_num_batches(self):
        with pytest.raises(ValueError):
            MiniBatchPartitioner(0)

    def test_iter_batches(self, numbered):
        assert len(list(
            MiniBatchPartitioner(3, seed=0).iter_batches(numbered)
        )) == 3


class TestHelpers:
    def test_batch_sizes_matches_partitioner(self, numbered):
        sizes = batch_sizes(1000, 7)
        parts = MiniBatchPartitioner(7, seed=5).partition(numbered)
        assert sizes == [p.num_rows for p in parts]

    def test_random_sample_fraction(self, numbered):
        out = random_sample(numbered, 0.25, seed=1)
        assert out.num_rows == 250
        assert len(set(out.column("v").tolist())) == 250

    def test_random_sample_bounds(self, numbered):
        with pytest.raises(ValueError):
            random_sample(numbered, 1.5)


class TestShuffleTable:
    def test_is_permutation(self, numbered):
        from repro.storage import shuffle_table

        out = shuffle_table(numbered, seed=9)
        assert sorted(out.column("v").tolist()) == list(range(1000))
        assert out.column("v").tolist() != list(range(1000))

    def test_deterministic(self, numbered):
        from repro.storage import shuffle_table

        a = shuffle_table(numbered, seed=9)
        b = shuffle_table(numbered, seed=9)
        assert a.column("v").tolist() == b.column("v").tolist()

    def test_makes_prefixes_uniform(self, numbered):
        """After shuffling, a prefix mean estimates the global mean."""
        from repro.storage import shuffle_table

        out = shuffle_table(numbered, seed=4)
        prefix = out.slice(0, 100).column("v").mean()
        assert abs(prefix - 499.5) < 100  # vs 49.5 for the sorted prefix
