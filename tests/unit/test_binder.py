"""Unit tests for SQL binding: name resolution and subquery lifting."""

import numpy as np
import pytest

from repro.errors import BindError, UnsupportedQueryError
from repro.plan import (
    Aggregate,
    Filter,
    Limit,
    Project,
    Scan,
    Sort,
    bind_statement,
)
from repro.sql import parse_sql
from repro.storage import Catalog, Table


@pytest.fixture
def cat():
    fact = Table.from_columns(
        {
            "k": np.array([1, 2], dtype=np.int64),
            "g": np.array(["a", "b"], dtype=object),
            "x": np.array([1.0, 2.0]),
            "y": np.array([3.0, 4.0]),
        }
    )
    dim = Table.from_columns(
        {
            "k": np.array([1, 2], dtype=np.int64),
            "label": np.array(["one", "two"], dtype=object),
        }
    )
    catalog = Catalog()
    catalog.register("fact", fact, streamed=True)
    catalog.register("dim", dim, streamed=False)
    return catalog


def bind(sql, cat):
    return bind_statement(parse_sql(sql), cat)


class TestBasicBinding:
    def test_projection_plan_shape(self, cat):
        q = bind("SELECT x, y FROM fact WHERE x > 1", cat)
        assert isinstance(q.plan, Project)
        assert isinstance(q.plan.input, Filter)
        assert isinstance(q.plan.input.input, Scan)

    def test_unknown_column(self, cat):
        with pytest.raises(BindError, match="cannot resolve"):
            bind("SELECT nope FROM fact", cat)

    def test_unknown_table(self, cat):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            bind("SELECT x FROM missing", cat)

    def test_case_insensitive_columns(self, cat):
        q = bind("SELECT X FROM fact", cat)
        assert q.plan.schema.names == ["x"]

    def test_qualified_resolution(self, cat):
        q = bind("SELECT f.x FROM fact f", cat)
        assert q.plan.schema.names == ["x"]
        with pytest.raises(BindError):
            bind("SELECT wrong.x FROM fact f", cat)

    def test_streamed_table_recorded(self, cat):
        q = bind("SELECT x FROM fact", cat)
        assert q.streamed_table == "fact"

    def test_order_limit(self, cat):
        q = bind("SELECT x FROM fact ORDER BY x DESC LIMIT 1", cat)
        assert isinstance(q.plan, Limit)
        assert isinstance(q.plan.input, Sort)
        assert q.plan.input.keys == [("x", True)]

    def test_order_by_nonoutput_rejected(self, cat):
        with pytest.raises(BindError, match="not in the output"):
            bind("SELECT x FROM fact ORDER BY y", cat)

    def test_select_distinct_rejected(self, cat):
        with pytest.raises(UnsupportedQueryError):
            bind("SELECT DISTINCT x FROM fact", cat)


class TestAggregateBinding:
    def test_global_aggregate(self, cat):
        q = bind("SELECT AVG(x) FROM fact", cat)
        assert isinstance(q.plan, Project)
        agg = q.plan.input
        assert isinstance(agg, Aggregate) and agg.is_global
        assert agg.aggregates[0].func == "avg"

    def test_group_by(self, cat):
        q = bind("SELECT g, SUM(x) AS total FROM fact GROUP BY g", cat)
        agg = q.plan.input
        assert [n for _, n in agg.group_by] == ["g"]
        assert agg.aggregates[0].alias == "total"
        assert q.plan.schema.names == ["g", "total"]

    def test_duplicate_agg_calls_share_state(self, cat):
        q = bind(
            "SELECT SUM(x) AS a, SUM(x) / COUNT(*) AS b FROM fact", cat
        )
        agg = q.plan.input
        assert len(agg.aggregates) == 2  # sum shared, count separate

    def test_having_references_aggregate(self, cat):
        q = bind(
            "SELECT g, SUM(x) FROM fact GROUP BY g HAVING SUM(x) > 1", cat
        )
        agg = q.plan.input
        assert agg.having is not None

    def test_nonaggregated_column_rejected(self, cat):
        with pytest.raises(BindError, match="GROUP BY"):
            bind("SELECT g, x FROM fact GROUP BY g", cat)

    def test_group_by_expression_selectable(self, cat):
        q = bind(
            "SELECT FLOOR(x / 2) AS b, COUNT(*) FROM fact "
            "GROUP BY FLOOR(x / 2)", cat
        )
        assert q.plan.schema.names[0] == "b"

    def test_aggregate_in_where_rejected(self, cat):
        with pytest.raises(BindError, match="not allowed here"):
            bind("SELECT x FROM fact WHERE SUM(x) > 1", cat)

    def test_nested_aggregate_rejected(self, cat):
        with pytest.raises(BindError, match="nest"):
            bind("SELECT SUM(AVG(x)) FROM fact", cat)

    def test_distinct_count_binds(self, cat):
        q = bind("SELECT COUNT(DISTINCT x) FROM fact", cat)
        agg = q.plan
        while not hasattr(agg, "aggregates"):
            agg = agg.input
        assert agg.aggregates[0].distinct

    def test_distinct_unsupported_func_rejected(self, cat):
        with pytest.raises(UnsupportedQueryError, match="DISTINCT"):
            bind("SELECT STDEV(DISTINCT x) FROM fact", cat)


class TestSubqueryLifting:
    def test_scalar_subquery(self, cat):
        q = bind(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            cat,
        )
        assert len(q.subqueries) == 1
        spec = q.subqueries[0]
        assert spec.kind == "scalar" and spec.value_column == "value"
        # The use site carries a SubqueryRef placeholder.
        filt = q.plan.input.input
        assert isinstance(filt, Filter)
        assert filt.predicate.subquery_slots() == {0}

    def test_correlated_subquery_becomes_keyed(self, cat):
        q = bind(
            "SELECT AVG(y) FROM fact WHERE x > "
            "(SELECT AVG(x) FROM fact f WHERE f.k = fact.k)",
            cat,
        )
        spec = q.subqueries[0]
        assert spec.kind == "keyed" and spec.key_column == "k"
        agg = spec.plan.input
        assert isinstance(agg, Aggregate)
        assert [n for _, n in agg.group_by] == ["k"]
        assert spec.plan.schema.names == ["k", "value"]

    def test_scaled_subquery_value_projection(self, cat):
        q = bind(
            "SELECT AVG(y) FROM fact WHERE x > "
            "(SELECT 0.5 * AVG(x) FROM fact)",
            cat,
        )
        spec = q.subqueries[0]
        value_expr = spec.plan.exprs[-1][0]
        assert "0.5" in value_expr.sql()

    def test_in_subquery_becomes_set(self, cat):
        q = bind(
            "SELECT COUNT(*) FROM fact WHERE k IN "
            "(SELECT k FROM fact GROUP BY k HAVING SUM(x) > 1)",
            cat,
        )
        spec = q.subqueries[0]
        assert spec.kind == "set"

    def test_nested_nesting_allocates_two_slots(self, cat):
        q = bind(
            "SELECT AVG(x) FROM fact WHERE x > "
            "(SELECT AVG(x) FROM fact WHERE y > "
            "(SELECT AVG(y) FROM fact))",
            cat,
        )
        assert set(q.subqueries) == {0, 1}
        order = q.subquery_order()
        # The innermost (AVG(y)) must evaluate before its consumer.
        inner_of_outer = q.subqueries[order[-1]].plan.subquery_slots()
        assert set(order[:-1]) >= inner_of_outer

    def test_multi_item_scalar_subquery_rejected(self, cat):
        with pytest.raises(UnsupportedQueryError):
            bind(
                "SELECT AVG(x) FROM fact WHERE x > "
                "(SELECT AVG(x), AVG(y) FROM fact)",
                cat,
            )

    def test_non_aggregate_scalar_subquery_rejected(self, cat):
        with pytest.raises(UnsupportedQueryError, match="aggregate"):
            bind(
                "SELECT AVG(x) FROM fact WHERE x > (SELECT x FROM fact)",
                cat,
            )

    def test_subquery_in_having(self, cat):
        q = bind(
            "SELECT g, SUM(x) FROM fact GROUP BY g "
            "HAVING SUM(x) > (SELECT 0.1 * SUM(x) FROM fact)",
            cat,
        )
        assert len(q.subqueries) == 1
        agg = q.plan.input
        assert agg.having.subquery_slots() == {0}


class TestJoinBinding:
    def test_dimension_join(self, cat):
        q = bind(
            "SELECT label, SUM(x) FROM fact JOIN dim ON fact.k = dim.k "
            "GROUP BY label",
            cat,
        )
        from repro.plan import Join

        agg = q.plan.input
        assert isinstance(agg.input, Join)
        assert agg.input.keys == [("k", "k")]

    def test_streamed_join_side_rejected(self, cat):
        cat.set_streamed("dim", True)
        with pytest.raises(UnsupportedQueryError, match="streamed"):
            bind("SELECT x FROM fact JOIN dim ON fact.k = dim.k", cat)

    def test_non_equi_join_rejected(self, cat):
        with pytest.raises(UnsupportedQueryError, match="equalities"):
            bind("SELECT x FROM fact JOIN dim ON fact.k > dim.k", cat)
