"""The qa comparator: float-tolerant structural equality + self-test."""

import numpy as np
import pytest

from repro.qa import (
    ComparatorBroken,
    assert_self_test,
    compare_tables,
    self_test,
)
from repro.storage import Table


def t(**cols):
    return Table.from_columns(
        {k: np.asarray(v) for k, v in cols.items()}
    )


class TestCompareTables:
    def test_identical_tables_match(self):
        a = t(g=np.array(["a", "b"], dtype=object), x=[1.0, 2.0])
        assert compare_tables(a, a) == []

    def test_fp_noise_within_tolerance(self):
        a = t(x=[1.0, 2.0, 3.0])
        b = t(x=np.array([1.0, 2.0, 3.0]) * (1.0 + 1e-12))
        assert compare_tables(a, b) == []

    def test_row_order_is_irrelevant(self):
        a = t(g=np.array(["a", "b"], dtype=object), x=[1.0, 2.0])
        b = t(g=np.array(["b", "a"], dtype=object), x=[2.0, 1.0])
        assert compare_tables(a, b) == []

    def test_value_divergence_detected(self):
        a = t(x=[1.0, 2.0])
        b = t(x=[1.0, 2.1])
        assert compare_tables(a, b) != []

    def test_row_count_mismatch_detected(self):
        assert compare_tables(t(x=[1.0]), t(x=[1.0, 2.0])) != []

    def test_schema_mismatch_detected(self):
        assert compare_tables(t(x=[1.0]), t(y=[1.0])) != []

    def test_nan_equals_nan(self):
        a = t(x=[float("nan"), 2.0])
        b = t(x=[float("nan"), 2.0])
        assert compare_tables(a, b) == []

    def test_nan_vs_number_detected(self):
        a = t(x=[float("nan")])
        b = t(x=[0.0])
        assert compare_tables(a, b) != []

    def test_near_tied_sort_keys_can_interleave(self):
        # Two rows whose keys differ below tolerance may land in either
        # canonical order; the column-sorted fallback must accept them.
        a = t(x=[1.0, 1.0 + 1e-13], y=[5.0, 7.0])
        b = t(x=[1.0 + 1e-13, 1.0], y=[7.0, 5.0])
        assert compare_tables(a, b) == []

    def test_empty_tables_match(self):
        a = t(x=np.zeros(0))
        b = t(x=np.zeros(0))
        assert compare_tables(a, b) == []


class TestSelfTest:
    def test_sane_tolerances_pass(self):
        assert self_test(rtol=1e-6, atol=1e-9) is None
        assert_self_test(rtol=1e-6, atol=1e-9)  # must not raise

    @pytest.mark.filterwarnings("ignore:One of rtol or atol")
    def test_infinite_tolerance_is_caught(self):
        # A comparator that tolerates everything stops flagging the
        # canned divergent cases — the self-test must notice.
        verdict = self_test(rtol=float("inf"), atol=float("inf"))
        assert verdict is not None
        with pytest.raises(ComparatorBroken):
            assert_self_test(rtol=float("inf"), atol=float("inf"))

    def test_zero_tolerance_is_caught(self):
        # The opposite direction: rtol=0/atol=0 flags benign fp noise.
        verdict = self_test(rtol=0.0, atol=0.0)
        assert verdict is not None
