"""Unit tests for mergeable aggregate states."""

import numpy as np
import pytest

from repro.engine import UDAFRegistry, UDAFSpec, make_state
from repro.engine.aggregates import (
    AggregateCall,
    AvgState,
    CountState,
    DistinctState,
    GroupIndex,
    MaxState,
    MinState,
    QuantileState,
    StdevState,
    SumState,
    VarState,
)
from repro.errors import ExecutionError, PlanError


def call(func, alias="out", param=None):
    return AggregateCall(func, None, alias, param=param)


class TestGroupIndex:
    def test_encode_assigns_dense_ids(self):
        idx = GroupIndex()
        out = idx.encode(np.array(["b", "a", "b", "c"], dtype=object))
        assert idx.num_groups == 3
        assert out.tolist() == [idx.index_of("b"), idx.index_of("a"),
                                idx.index_of("b"), idx.index_of("c")]

    def test_encode_stable_across_calls(self):
        idx = GroupIndex()
        first = idx.encode(np.array([10, 20]))
        second = idx.encode(np.array([20, 30]))
        assert first.tolist() == [idx.index_of(10), idx.index_of(20)]
        assert second[0] == idx.index_of(20)
        assert idx.num_groups == 3

    def test_encode_without_adding(self):
        idx = GroupIndex()
        idx.encode(np.array([1]))
        out = idx.encode(np.array([1, 2]), add_new=False)
        assert out.tolist() == [0, -1]
        assert idx.num_groups == 1

    def test_empty(self):
        idx = GroupIndex()
        assert idx.encode(np.array([])).tolist() == []

    def test_copy_independent(self):
        idx = GroupIndex()
        idx.encode(np.array([1]))
        clone = idx.copy()
        clone.encode(np.array([2]))
        assert idx.num_groups == 1 and clone.num_groups == 2


class TestExactStates:
    def test_sum(self):
        state = SumState()
        state.update(np.array([0, 0, 1]), np.array([1.0, 2.0, 10.0]))
        np.testing.assert_array_equal(state.finalize(), [3.0, 10.0])

    def test_sum_scales(self):
        state = SumState()
        state.update(np.zeros(2, dtype=np.int64), np.array([1.0, 2.0]))
        assert state.finalize(scale=5.0)[0] == 15.0

    def test_count_ignores_values(self):
        state = CountState()
        state.update(np.array([0, 1, 1]), None)
        np.testing.assert_array_equal(state.finalize(), [1.0, 2.0])

    def test_avg_scale_invariant(self):
        state = AvgState()
        state.update(np.zeros(4, dtype=np.int64),
                     np.array([1.0, 2.0, 3.0, 4.0]))
        assert state.finalize(scale=7.0)[0] == pytest.approx(2.5)

    def test_avg_empty_group_is_zero(self):
        state = AvgState()
        state.ensure_groups(2)
        state.update(np.array([1]), np.array([5.0]))
        out = state.finalize()
        assert out[0] == 0.0 and out[1] == 5.0

    def test_min_max(self):
        lo, hi = MinState(), MaxState()
        idx = np.array([0, 0, 1])
        vals = np.array([3.0, -1.0, 7.0])
        lo.update(idx, vals)
        hi.update(idx, vals)
        np.testing.assert_array_equal(lo.finalize(), [-1.0, 7.0])
        np.testing.assert_array_equal(hi.finalize(), [3.0, 7.0])

    def test_var_stdev_match_numpy(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(10, 3, 500)
        var_state, std_state = VarState(), StdevState()
        idx = np.zeros(500, dtype=np.int64)
        var_state.update(idx, vals)
        std_state.update(idx, vals)
        assert var_state.finalize()[0] == pytest.approx(
            np.var(vals, ddof=1), rel=1e-9
        )
        assert std_state.finalize()[0] == pytest.approx(
            np.std(vals, ddof=1), rel=1e-9
        )

    def test_weighted_sum(self):
        state = SumState()
        state.update(np.zeros(2, dtype=np.int64), np.array([1.0, 2.0]),
                     np.array([3.0, 0.0]))
        assert state.finalize()[0] == 3.0

    def test_incremental_equals_batch(self):
        rng = np.random.default_rng(1)
        vals = rng.normal(size=1000)
        idx = rng.integers(0, 7, 1000)
        whole = AvgState()
        whole.update(idx, vals)
        pieces = AvgState()
        for lo in range(0, 1000, 100):
            pieces.update(idx[lo:lo + 100], vals[lo:lo + 100])
        np.testing.assert_allclose(pieces.finalize(), whole.finalize())

    def test_merge_equals_update(self):
        rng = np.random.default_rng(2)
        vals = rng.normal(size=200)
        idx = rng.integers(0, 3, 200)
        a, b, whole = SumState(), SumState(), SumState()
        a.update(idx[:100], vals[:100])
        b.update(idx[100:], vals[100:])
        whole.update(idx, vals)
        a.merge(b)
        np.testing.assert_allclose(a.finalize(), whole.finalize())

    def test_merge_type_mismatch(self):
        with pytest.raises(ExecutionError, match="cannot merge"):
            SumState().merge(CountState())

    def test_copy_is_independent(self):
        state = SumState()
        state.update(np.zeros(1, dtype=np.int64), np.array([1.0]))
        clone = state.copy()
        clone.update(np.zeros(1, dtype=np.int64), np.array([1.0]))
        assert state.finalize()[0] == 1.0 and clone.finalize()[0] == 2.0

    def test_values_length_checked(self):
        with pytest.raises(ExecutionError):
            SumState().update(np.array([0, 0]), np.array([1.0]))


class TestTrialStates:
    def test_trial_shape(self):
        state = SumState(trials=8)
        weights = np.ones((5, 8))
        state.update(np.zeros(5, dtype=np.int64), np.arange(5.0), weights)
        out = state.finalize()
        assert out.shape == (1, 8)
        np.testing.assert_array_equal(out[0], np.full(8, 10.0))

    def test_poisson_weights_vary_trials(self):
        rng = np.random.default_rng(3)
        state = AvgState(trials=16)
        vals = rng.normal(10, 2, 400)
        weights = rng.poisson(1.0, (400, 16)).astype(float)
        state.update(np.zeros(400, dtype=np.int64), vals, weights)
        reps = state.finalize()[0]
        assert reps.std() > 0
        assert abs(reps.mean() - vals.mean()) < 0.5

    def test_1d_weights_broadcast_to_trials(self):
        state = SumState(trials=4)
        state.update(np.zeros(2, dtype=np.int64), np.array([1.0, 2.0]),
                     np.array([2.0, 1.0]))
        np.testing.assert_array_equal(state.finalize()[0], np.full(4, 4.0))

    def test_bad_weight_shape(self):
        state = SumState(trials=4)
        with pytest.raises(ExecutionError):
            state.update(np.zeros(2, dtype=np.int64), np.array([1.0, 2.0]),
                         np.ones((2, 3)))

    def test_min_trials_respect_zero_weights(self):
        state = MinState(trials=2)
        weights = np.array([[1.0, 0.0], [0.0, 1.0]])
        state.update(np.zeros(2, dtype=np.int64), np.array([1.0, 5.0]),
                     weights)
        out = state.finalize()[0]
        assert out[0] == 1.0 and out[1] == 5.0


class TestQuantile:
    def test_median_exact_small(self):
        state = QuantileState(q=0.5, capacity=100)
        state.update(np.zeros(9, dtype=np.int64), np.arange(1.0, 10.0))
        assert state.finalize()[0] == 5.0

    def test_reservoir_bounds_memory(self):
        state = QuantileState(q=0.5, capacity=64, seed=1)
        rng = np.random.default_rng(5)
        for _ in range(10):
            state.update(np.zeros(100, dtype=np.int64), rng.normal(size=100))
        assert len(state.values) <= 64
        assert state.seen == 1000

    def test_quantile_approximates(self):
        state = QuantileState(q=0.9, capacity=2048, seed=2)
        rng = np.random.default_rng(6)
        vals = rng.uniform(0, 1, 5000)
        state.update(np.zeros(5000, dtype=np.int64), vals)
        assert state.finalize()[0] == pytest.approx(0.9, abs=0.05)

    def test_grouped_medians(self):
        state = QuantileState(q=0.5, capacity=100)
        state.update(np.array([0, 0, 0, 1, 1, 1]),
                     np.array([1.0, 2.0, 3.0, 10.0, 20.0, 30.0]))
        out = state.finalize()
        assert out[0] == 2.0 and out[1] == 20.0

    def test_merge(self):
        a = QuantileState(q=0.5, capacity=1000, seed=3)
        b = QuantileState(q=0.5, capacity=1000, seed=4)
        a.update(np.zeros(100, dtype=np.int64), np.arange(100.0))
        b.update(np.zeros(100, dtype=np.int64), np.arange(100.0, 200.0))
        a.merge(b)
        assert 80 <= a.finalize()[0] <= 120

    def test_invalid_fraction(self):
        with pytest.raises(ExecutionError):
            QuantileState(q=1.5)

    def test_empty_grouped_input_has_no_rows(self):
        # Regression: a grouped quantile over a filtered-to-empty input
        # must produce 0 rows like the (empty) group-key columns, not a
        # phantom row that makes the output table ragged.
        state = QuantileState(q=0.5, capacity=16)
        assert len(state.finalize()) == 0


class TestDistinct:
    def test_count_distinct(self):
        state = DistinctState()
        state.update(np.array([0, 0, 0, 1]),
                     np.array([1.0, 1.0, 2.0, 1.0]))
        np.testing.assert_array_equal(state.finalize(), [2.0, 1.0])

    def test_sum_distinct_ignores_multiplicity(self):
        state = DistinctState(mode="sum")
        state.update(np.zeros(4, dtype=np.int64),
                     np.array([3.0, 3.0, 3.0, 7.0]))
        assert state.finalize()[0] == 10.0

    def test_scale_invariant_without_singletons(self):
        # Replicating every seen row adds no distinct value: with no
        # singleton pairs the k/i multiset rescaling must not inflate
        # the estimate.
        state = DistinctState()
        state.update(np.zeros(4, dtype=np.int64),
                     np.array([1.0, 1.0, 2.0, 2.0]))
        assert state.finalize(scale=4.0)[0] == 2.0

    def test_good_toulmin_extrapolates_singletons(self):
        # Pinned regression for the t_dist calibration under-coverage:
        # mid-run, singletons predict unseen species via the two-term
        # Good-Toulmin series t*phi_1 - t^2*phi_2; at the final batch
        # (scale == 1, t == 0) the answer stays exact.
        state = DistinctState()
        state.update(np.zeros(5, dtype=np.int64),
                     np.array([1.0, 2.0, 3.0, 3.0, 3.0]))
        assert state.finalize(scale=1.0)[0] == 3.0
        # phi_1 = 2, phi_2 = 0, t = 1: 3 seen + 2 predicted unseen.
        assert state.finalize(scale=2.0)[0] == 5.0

    def test_good_toulmin_doubletons_damp_the_extrapolation(self):
        # phi_1 = phi_2 = 1 at t = 1: the two-term truncation cancels
        # to zero while first order predicts one unseen species; the
        # point estimate is the midpoint of that bracket.
        state = DistinctState()
        state.update(np.zeros(3, dtype=np.int64),
                     np.array([1.0, 2.0, 2.0]))
        assert state.finalize(scale=2.0)[0] == 2.5

    def test_good_toulmin_never_reduces_below_seen(self):
        # All doubletons: the raw series is negative, the clamp keeps
        # the estimate at distinct-seen (truth can never be below it).
        state = DistinctState()
        state.update(np.zeros(4, dtype=np.int64),
                     np.array([1.0, 1.0, 2.0, 2.0]))
        assert state.finalize(scale=3.0)[0] == 2.0

    def test_good_toulmin_sum_weights_singleton_values(self):
        # SUM DISTINCT extrapolates value-weighted species mass: the
        # singletons' own values stand in for the unseen tail.
        state = DistinctState(mode="sum")
        state.update(np.zeros(2, dtype=np.int64),
                     np.array([5.0, 2.0]))
        assert state.finalize(scale=1.0)[0] == 7.0
        assert state.finalize(scale=2.0)[0] == 14.0  # 7 seen + t * 7

    def test_bootstrap_presence_per_trial(self):
        # A value survives a replica iff any of its rows drew weight;
        # every pair also contributes the deterministic e^-c recentering
        # mass that cancels the Poissonized replicas' downward bias.
        state = DistinctState(trials=2)
        weights = np.array([[1.0, 0.0], [0.0, 0.0]])
        state.update(np.zeros(2, dtype=np.int64),
                     np.array([5.0, 9.0]), weights)
        out = state.finalize()[0]
        kappa = 2 * np.exp(-1.0)  # two raw singletons
        assert out[0] - out[1] == 1.0  # presence differs by one pair
        np.testing.assert_allclose(out[1], kappa)

    def test_nan_values_dedup_to_one(self):
        state = DistinctState()
        state.update(np.zeros(3, dtype=np.int64),
                     np.array([np.nan, np.nan, 1.0]))
        assert state.finalize()[0] == 2.0

    def test_merge_equals_update(self):
        rng = np.random.default_rng(9)
        vals = rng.integers(0, 12, 300).astype(np.float64)
        idx = rng.integers(0, 3, 300)
        a, b, whole = DistinctState(), DistinctState(), DistinctState()
        a.update(idx[:150], vals[:150])
        b.update(idx[150:], vals[150:])
        whole.update(idx, vals)
        a.merge(b)
        np.testing.assert_array_equal(a.finalize(), whole.finalize())

    def test_requires_argument(self):
        with pytest.raises(ExecutionError, match="argument"):
            DistinctState().update(np.zeros(1, dtype=np.int64), None)

    def test_empty_grouped_input_has_no_rows(self):
        # Regression twin of the QuantileState case above.
        assert len(DistinctState().finalize()) == 0


class TestFactoryAndUdaf:
    def test_make_state_builtins(self):
        for func in ("sum", "count", "avg", "min", "max", "stdev", "var"):
            assert make_state(call(func)) is not None

    def test_make_state_quantile_param(self):
        state = make_state(call("quantile", param=0.25))
        assert state.q == 0.25

    def test_median_is_quantile_half(self):
        assert make_state(call("median")).q == 0.5

    def test_unknown_aggregate(self):
        with pytest.raises(PlanError, match="unknown aggregate"):
            make_state(call("frobnicate"))

    def test_udaf_roundtrip(self):
        spec = UDAFSpec(
            name="geomean",
            init=lambda: [0.0, 0.0],
            update=lambda s, v, w: [s[0] + np.sum(np.log(v) * w),
                                    s[1] + np.sum(w)],
            merge=lambda a, b: [a[0] + b[0], a[1] + b[1]],
            finalize=lambda s, scale: float(np.exp(s[0] / max(s[1], 1.0))),
        )
        registry = UDAFRegistry()
        registry.register(spec)
        state = make_state(call("geomean"), udafs=registry)
        state.update(np.zeros(3, dtype=np.int64), np.array([1.0, 10.0, 100.0]))
        assert state.finalize()[0] == pytest.approx(10.0)

    def test_udaf_no_trials(self):
        spec = UDAFSpec("x", lambda: 0, lambda s, v, w: s, lambda a, b: a,
                        lambda s, scale: 0.0)
        registry = UDAFRegistry()
        registry.register(spec)
        with pytest.raises(ExecutionError, match="bootstrap"):
            make_state(call("x"), trials=8, udafs=registry)

    def test_duplicate_udaf_rejected(self):
        spec = UDAFSpec("x", lambda: 0, lambda s, v, w: s, lambda a, b: a,
                        lambda s, scale: 0.0)
        registry = UDAFRegistry()
        registry.register(spec)
        with pytest.raises(PlanError):
            registry.register(spec)
