"""Unit tests for the query controller and public session API."""

import numpy as np
import pytest

from repro import (
    GolaConfig,
    GolaSession,
    QueryStopped,
    Table,
    UnsupportedQueryError,
)


class TestSessionBasics:
    def test_register_and_sql(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        assert "subquery #0" in query.plan_description

    def test_execute_batch_accepts_text(self, session):
        out = session.execute_batch("SELECT COUNT(*) AS n FROM sessions")
        assert out.to_pylist()[0]["n"] == 5000

    def test_load_csv(self, tmp_path, sessions_table):
        from repro.storage import write_csv

        path = tmp_path / "s.csv"
        write_csv(sessions_table, path)
        s = GolaSession(GolaConfig(num_batches=2, bootstrap_trials=8))
        t = s.load_csv("sessions", path)
        assert t.num_rows == 5000
        assert "sessions" in s.catalog

    def test_udf_available_in_sql(self, session):
        session.register_udf("clip10", lambda v: np.minimum(v, 10.0))
        out = session.execute_batch(
            "SELECT MAX(clip10(buffer_time)) AS m FROM sessions"
        )
        assert out.to_pylist()[0]["m"] == 10.0

    def test_udaf_available_in_sql(self, session):
        session.register_udaf(
            "second_moment",
            init=lambda: [0.0, 0.0],
            update=lambda s, v, w: [s[0] + float(np.sum(v * v * w)),
                                    s[1] + float(np.sum(w))],
            merge=lambda a, b: [a[0] + b[0], a[1] + b[1]],
            finalize=lambda s, scale: s[0] / max(s[1], 1.0),
        )
        out = session.execute_batch(
            "SELECT second_moment(buffer_time) AS m2 FROM sessions"
        )
        buffer = session.catalog.get("sessions").column("buffer_time")
        assert out.to_pylist()[0]["m2"] == pytest.approx(
            float((buffer ** 2).mean())
        )


class TestOnlineRuns:
    def test_snapshot_count_equals_batches(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        snapshots = list(query.run_online())
        assert len(snapshots) == 5
        assert snapshots[-1].is_final

    def test_final_snapshot_equals_exact(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        last = query.run_to_completion()
        exact = session.execute_batch(query)
        assert last.estimate == pytest.approx(
            float(exact.column(exact.schema.names[0])[0]), rel=1e-9
        )

    def test_estimates_within_interval_mostly(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        exact = session.execute_batch(query)
        truth = float(exact.column(exact.schema.names[0])[0])
        hits = 0
        snaps = list(session.sql(query.sql).run_online())
        for snap in snaps:
            if snap.interval.contains(truth):
                hits += 1
        assert hits >= len(snaps) - 1  # allow one miss at 95% nominal

    def test_stop_ends_iteration(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        count = 0
        for snapshot in query.run_online():
            count += 1
            if count == 2:
                query.stop()
        assert count == 2

    def test_run_until_target(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        snap = query.run_until(relative_stdev=0.5)
        assert snap.relative_stdev <= 0.5

    def test_run_until_unreachable_returns_final(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        snap = query.run_until(relative_stdev=0.0)
        assert snap.is_final

    def test_stop_before_run_raises(self, session, sbi_sql):
        with pytest.raises(QueryStopped):
            session.sql(sbi_sql).stop()

    def test_reproducible_runs(self, session, sbi_sql):
        a = [s.estimate for s in session.sql(sbi_sql).run_online()]
        b = [s.estimate for s in session.sql(sbi_sql).run_online()]
        assert a == b

    def test_config_override_per_run(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        snaps = list(query.run_online(
            GolaConfig(num_batches=3, bootstrap_trials=8, seed=1)
        ))
        assert len(snaps) == 3

    def test_monotonic_query_runs_with_empty_uncertain(self, session):
        query = session.sql("SELECT AVG(play_time) FROM sessions")
        for snap in query.run_online():
            assert snap.total_uncertain == 0

    def test_grouped_query_snapshots(self, session):
        query = session.sql(
            "SELECT FLOOR(buffer_time / 20) AS b, COUNT(*) AS n "
            "FROM sessions GROUP BY FLOOR(buffer_time / 20) ORDER BY b"
        )
        last = query.run_to_completion()
        exact = session.execute_batch(query)
        assert last.table.num_rows == exact.num_rows

    def test_snapshot_errors_present_for_aggregates(self, session, sbi_sql):
        snap = next(iter(session.sql(sbi_sql).run_online()))
        assert snap.errors  # at least the aggregate column has error bars
        name = snap.table.schema.names[0]
        assert snap.errors[name].lows.shape == (1,)


class TestMidRunCancellation:
    """stop()/run_until mid-run: clean termination, consistent last
    snapshot, and a session/query that stays fully reusable."""

    def test_stop_mid_run_last_snapshot_consistent(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        snaps = []
        for snapshot in query.run_online():
            snaps.append(snapshot)
            if snapshot.batch_index == 3:
                query.stop()
        assert [s.batch_index for s in snaps] == [1, 2, 3]
        last = snaps[-1]
        assert not last.is_final
        assert last.fraction == pytest.approx(3 / 5)
        # The stopped snapshot is a full, usable answer with error bars.
        assert np.isfinite(last.estimate)
        assert last.interval.low <= last.estimate <= last.interval.high

    def test_stop_mid_run_matches_uninterrupted_prefix(
        self, session, sbi_sql
    ):
        """Stopping must not perturb what was already computed."""
        full = [s.estimate for s in session.sql(sbi_sql).run_online()]
        query = session.sql(sbi_sql)
        stopped = []
        for snapshot in query.run_online():
            stopped.append(snapshot.estimate)
            if len(stopped) == 2:
                query.stop()
        assert stopped == full[:2]

    def test_session_reusable_after_stop(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        for snapshot in query.run_online():
            query.stop()
        # Same query object, fresh run: starts over from batch 1 and
        # reproduces the full sequence.
        rerun = list(query.run_online())
        assert [s.batch_index for s in rerun] == [1, 2, 3, 4, 5]
        # And the session still serves other queries.
        out = session.execute_batch("SELECT COUNT(*) AS n FROM sessions")
        assert out.to_pylist()[0]["n"] == 5000

    def test_run_until_stops_iterator_cleanly(self, session, sbi_sql):
        query = session.sql(sbi_sql)
        snap = query.run_until(relative_stdev=0.5)
        assert snap.relative_stdev <= 0.5
        assert not snap.is_final
        # The controller's generator was exhausted, not abandoned:
        # another run_until on the same query works from scratch.
        again = query.run_until(relative_stdev=0.5)
        assert again.batch_index == snap.batch_index
        assert again.estimate == snap.estimate

    def test_generator_close_midway_leaves_session_usable(
        self, session, sbi_sql
    ):
        query = session.sql(sbi_sql)
        it = query.run_online()
        first = next(it)
        it.close()  # abandon the run (GeneratorExit inside the query span)
        assert first.batch_index == 1
        rerun = [s.estimate for s in query.run_online()]
        assert len(rerun) == 5


class TestControllerValidation:
    def test_requires_streamed_relation(self, sessions_table, sbi_sql):
        session = GolaSession(GolaConfig(num_batches=2, bootstrap_trials=8))
        session.register_table("sessions", sessions_table, streamed=False)
        query = session.sql(sbi_sql)
        with pytest.raises(UnsupportedQueryError, match="streamed"):
            list(query.run_online())

    def test_plain_select_unsupported_online(self, session):
        query = session.sql("SELECT play_time FROM sessions")
        with pytest.raises(UnsupportedQueryError):
            list(query.run_online())

    def test_static_dimension_subquery(self, sessions_table):
        """A subquery over a non-streamed table is evaluated once, exactly."""
        session = GolaSession(
            GolaConfig(num_batches=3, bootstrap_trials=8, seed=2)
        )
        session.register_table("sessions", sessions_table, streamed=True)
        thresholds = Table.from_columns({"cut": np.array([25.0, 35.0])})
        session.register_table("thresholds", thresholds, streamed=False)
        query = session.sql(
            "SELECT AVG(play_time) FROM sessions WHERE buffer_time > "
            "(SELECT AVG(cut) FROM thresholds)"
        )
        last = query.run_to_completion()
        exact = session.execute_batch(query)
        assert last.estimate == pytest.approx(
            float(exact.column(exact.schema.names[0])[0]), rel=1e-9
        )
        # Static values are certain: no uncertain tuples anywhere.
        assert all(
            s == 0 for s in last.uncertain_sizes.values()
        )

    def test_retain_batches_disabled_still_runs_clean_queries(
        self, sessions_table
    ):
        session = GolaSession(
            GolaConfig(num_batches=3, bootstrap_trials=8, seed=2,
                       retain_batches=False)
        )
        session.register_table("sessions", sessions_table)
        query = session.sql("SELECT SUM(play_time) FROM sessions")
        last = query.run_to_completion()
        exact = session.execute_batch(query)
        assert last.estimate == pytest.approx(
            float(exact.column(exact.schema.names[0])[0]), rel=1e-6
        )
