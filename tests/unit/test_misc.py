"""Unit tests for config validation, errors, results and the console."""

import io

import numpy as np
import pytest

from repro import ClusterConfig, GolaConfig, RangeViolation, ReproError
from repro.core.result import ColumnErrors, OnlineSnapshot
from repro.errors import ParseError
from repro.frontends import (
    ProgressConsole,
    error_bar,
    progress_bar,
    render_snapshot,
)
from repro.storage import Table


class TestGolaConfig:
    def test_defaults_valid(self):
        GolaConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_batches": 0},
            {"bootstrap_trials": 1},
            {"confidence": 0.0},
            {"confidence": 1.0},
            {"epsilon_multiplier": -0.1},
            {"max_quantile_sample": 2},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GolaConfig(**kwargs)

    def test_with_options(self):
        base = GolaConfig(seed=1)
        tweaked = base.with_options(num_batches=42)
        assert tweaked.num_batches == 42 and tweaked.seed == 1
        assert base.num_batches != 42  # frozen original untouched

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ValueError):
            ClusterConfig(rows_per_task=0)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParseError, ReproError)
        assert issubclass(RangeViolation, ReproError)

    def test_range_violation_message(self):
        err = RangeViolation("slot#0", 5.0, 1.0, 2.0)
        assert "slot#0" in str(err) and "escaped" in str(err)

    def test_parse_error_position(self):
        err = ParseError("bad", position=4, text="ab\ncd")
        assert "line 2" in str(err)


def make_snapshot(values, lows=None, highs=None, rel=None):
    table = Table.from_columns({"v": np.asarray(values, dtype=np.float64)})
    errors = {}
    if lows is not None:
        errors["v"] = ColumnErrors(
            lows=np.asarray(lows), highs=np.asarray(highs),
            rel_stdev=np.asarray(rel),
        )
    return OnlineSnapshot(
        batch_index=2, num_batches=4, table=table, errors=errors,
        uncertain_sizes={"main": 7}, rows_processed={"main": 100},
        rebuilds=[], elapsed_s=0.01, confidence=0.95,
    )


class TestSnapshot:
    def test_scalar_conveniences(self):
        snap = make_snapshot([10.0], [9.0], [11.0], [0.05])
        assert snap.estimate == 10.0
        assert snap.interval.low == 9.0 and snap.interval.high == 11.0
        assert snap.relative_stdev == 0.05
        assert snap.fraction == 0.5 and not snap.is_final

    def test_scalar_access_rejected_for_tables(self):
        snap = make_snapshot([1.0, 2.0])
        with pytest.raises(ValueError, match="single value"):
            _ = snap.estimate

    def test_missing_errors_degenerate_interval(self):
        snap = make_snapshot([3.0])
        assert snap.interval.width == 0.0
        # No replica support -> the error is unknown, not zero.
        assert np.isnan(snap.relative_stdev)
        assert "rsd=n/a" in snap.describe()

    def test_describe(self):
        snap = make_snapshot([10.0], [9.0], [11.0], [0.05])
        text = snap.describe()
        assert "batch 2/4" in text and "uncertain=7" in text


class TestConsole:
    def test_progress_bar(self):
        assert progress_bar(0.5, width=10) == "[#####.....]"
        assert progress_bar(-1.0, width=4) == "[....]"
        assert progress_bar(2.0, width=4) == "[####]"

    def test_error_bar_positions_marker(self):
        bar = error_bar(0.0, 5.0, 10.0, width=11)
        assert bar[5] == "*" and bar[0] == "|" and bar[-1] == "|"
        assert error_bar(0.0, 0.0, 0.0).strip() == "*"

    def test_render_snapshot_scalar(self):
        snap = make_snapshot([10.0], [9.0], [11.0], [0.05])
        text = render_snapshot(snap)
        assert "estimate" in text and "uncertain set: 7" in text

    def test_render_snapshot_table(self):
        snap = make_snapshot([1.0, 2.0])
        text = render_snapshot(snap)
        assert "v" in text

    def test_progress_console_streams(self):
        sink = io.StringIO()
        console = ProgressConsole(sink=sink)
        console.update(make_snapshot([10.0], [9.0], [11.0], [0.01]))
        console.finish()
        out = sink.getvalue()
        assert "batch 2/4" in out and "done after 1" in out

    def test_rebuilds_surfaced(self):
        snap = make_snapshot([10.0], [9.0], [11.0], [0.05])
        snap.rebuilds.append("main")
        assert "RECOMPUTED" in render_snapshot(snap)
