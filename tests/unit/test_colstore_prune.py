"""Unit tests for zone-map pruning: soundness against the exact paths."""

import numpy as np
import pytest

from repro.core.uncertain import TRI_FALSE, TRI_TRUE, TRI_UNKNOWN
from repro.expr.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Environment,
    Literal,
    evaluate_mask,
)
from repro.storage import Table
from repro.storage.colstore import write_partition
from repro.storage.colstore.format import PartitionReader
from repro.storage.colstore import prune as prune_mod
from repro.storage.colstore.prune import (
    chunk_decisions,
    chunk_keep,
    pruned_filter_mask,
)

OPS = ("<", "<=", ">", ">=", "=", "!=")


def zones_for(table: Table, chunk_rows: int, tmp_path):
    path = tmp_path / "z.gcp"
    write_partition(path, table, chunk_rows=chunk_rows)
    return PartitionReader(path).zone_index()


@pytest.fixture
def table():
    rng = np.random.default_rng(42)
    f = rng.normal(50.0, 20.0, 2000)
    f[rng.random(2000) < 0.05] = np.nan
    return Table.from_columns({
        "i": np.sort(rng.integers(0, 100, 2000)).astype(np.int64),
        "f": np.sort(f),  # NaNs sort to the end: some chunks all-NaN
        "s": np.array([f"k{v}" for v in rng.integers(0, 5, 2000)],
                      dtype=object),
    })


class TestTriConstants:
    def test_match_core_uncertain(self):
        assert prune_mod.TRI_FALSE == TRI_FALSE
        assert prune_mod.TRI_UNKNOWN == TRI_UNKNOWN
        assert prune_mod.TRI_TRUE == TRI_TRUE


class TestCertainFilterPruning:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("column,const", [
        ("i", 10), ("i", 50), ("i", 99), ("f", 30.0), ("f", 80.0),
    ])
    def test_mask_identical_to_evaluate_mask(self, table, tmp_path,
                                             op, column, const):
        zones = zones_for(table, 64, tmp_path)
        predicate = Comparison(op, ColumnRef(column), Literal(const))
        env = Environment()
        mask, pruned = pruned_filter_mask(predicate, table, env, zones)
        np.testing.assert_array_equal(
            mask, np.asarray(evaluate_mask(predicate, table, env),
                             dtype=bool)
        )

    def test_selective_predicate_prunes(self, table, tmp_path):
        zones = zones_for(table, 64, tmp_path)
        predicate = Comparison("<", ColumnRef("i"), Literal(5))
        mask, pruned = pruned_filter_mask(
            predicate, table, Environment(), zones
        )
        assert pruned > 0
        assert zones.pruned_total == pruned

    def test_conjunction_intersects_chunk_masks(self, table, tmp_path):
        zones = zones_for(table, 64, tmp_path)
        predicate = BooleanOp("AND", [
            Comparison(">", ColumnRef("i"), Literal(20)),
            Comparison("<", ColumnRef("i"), Literal(40)),
        ])
        env = Environment()
        mask, pruned = pruned_filter_mask(predicate, table, env, zones)
        assert pruned > 0
        np.testing.assert_array_equal(
            mask, np.asarray(evaluate_mask(predicate, table, env),
                             dtype=bool)
        )

    def test_nan_rows_never_pass_comparisons(self, table, tmp_path):
        # The last chunks are all-NaN after the sort; < must not keep
        # them, and != must not prune chunks that merely contain NaNs.
        zones = zones_for(table, 64, tmp_path)
        env = Environment()
        for op, const in (("<", 1e9), ("!=", 50.0)):
            predicate = Comparison(op, ColumnRef("f"), Literal(const))
            mask, _ = pruned_filter_mask(predicate, table, env, zones)
            np.testing.assert_array_equal(
                mask, np.asarray(evaluate_mask(predicate, table, env),
                                 dtype=bool)
            )

    def test_string_predicate_not_pruned_but_exact(self, table, tmp_path):
        zones = zones_for(table, 64, tmp_path)
        predicate = Comparison("=", ColumnRef("s"), Literal("k3"))
        env = Environment()
        mask, pruned = pruned_filter_mask(predicate, table, env, zones)
        np.testing.assert_array_equal(
            mask, np.asarray(evaluate_mask(predicate, table, env),
                             dtype=bool)
        )

    def test_row_count_mismatch_disables_pruning(self, table, tmp_path):
        zones = zones_for(table, 64, tmp_path)
        shorter = table.slice(0, 100)
        predicate = Comparison("<", ColumnRef("i"), Literal(5))
        mask, pruned = pruned_filter_mask(
            predicate, shorter, Environment(), zones
        )
        assert pruned == 0
        assert mask.shape == (100,)

    def test_chunk_keep_none_for_unusable_predicate(self, table,
                                                    tmp_path):
        zones = zones_for(table, 64, tmp_path)
        # column-vs-column comparison has no literal side
        predicate = Comparison("<", ColumnRef("i"), ColumnRef("f"))
        assert chunk_keep(predicate, zones) is None


class TestChunkTriDecisions:
    @pytest.mark.parametrize("op", OPS)
    def test_decisions_match_per_row_tri_eval(self, table, tmp_path, op):
        from repro.core.classify import IntervalEnv, tri_eval
        from repro.core.uncertain import ScalarSlotState
        from repro.estimate.variation import VariationRange
        from repro.expr.expressions import SubqueryRef

        zones = zones_for(table, 64, tmp_path)
        for lo, hi in ((25.0, 30.0), (49.9, 50.1), (-1e9, 1e9)):
            decisions = chunk_decisions(zones, "f", op, lo, hi)
            assert decisions is not None
            # A slot-bearing predicate whose variation range is
            # [lo, hi]: col op <subquery#0>.
            predicate = Comparison(op, ColumnRef("f"), SubqueryRef(0))
            state = ScalarSlotState(
                slot=0, estimate=(lo + hi) / 2.0,
                replicas=np.array([lo, hi]),
                vrange=VariationRange(lo, hi),
            )
            env = IntervalEnv(slots={0: state})
            per_row = tri_eval(predicate, table, env)
            for c in range(zones.num_chunks):
                if decisions[c] == TRI_UNKNOWN:
                    continue
                rows = per_row[c * 64:(c + 1) * 64]
                assert (rows == decisions[c]).all(), (op, lo, hi, c)

    def test_string_column_returns_none(self, table, tmp_path):
        zones = zones_for(table, 64, tmp_path)
        assert chunk_decisions(zones, "s", "<", 0.0, 1.0) is None
        assert chunk_decisions(zones, "missing", "<", 0.0, 1.0) is None


class TestUncertainMatching:
    def test_scalar_subquery_matches(self):
        from repro.expr.expressions import SubqueryRef
        from repro.storage.colstore.prune import match_uncertain_comparison

        pred = Comparison(">", ColumnRef("x3"), SubqueryRef(0))
        assert match_uncertain_comparison(pred)[:2] == ("x3", ">")
        # flipped operand order flips the operator
        pred = Comparison(">", SubqueryRef(0), ColumnRef("x3"))
        assert match_uncertain_comparison(pred)[:2] == ("x3", "<")

    def test_correlated_subquery_rejected(self):
        from repro.expr.expressions import SubqueryRef
        from repro.storage.colstore.prune import match_uncertain_comparison

        pred = Comparison(
            ">", ColumnRef("x3"),
            SubqueryRef(0, correlation=ColumnRef("k1")),
        )
        assert match_uncertain_comparison(pred) is None

    def test_non_column_side_rejected(self):
        from repro.expr.expressions import SubqueryRef
        from repro.storage.colstore.prune import match_uncertain_comparison

        pred = Comparison(
            ">", BinaryOp("+", ColumnRef("x3"), Literal(1.0)),
            SubqueryRef(0),
        )
        assert match_uncertain_comparison(pred) is None
