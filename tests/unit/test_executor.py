"""Unit tests for the exact batch executor against numpy oracles."""

import numpy as np
import pytest

from repro.engine import BatchExecutor, hash_join
from repro.errors import ExecutionError
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table


@pytest.fixture
def data():
    rng = np.random.default_rng(7)
    n = 2000
    fact = Table.from_columns(
        {
            "k": rng.integers(0, 50, n).astype(np.int64),
            "g": np.array(["g%d" % v for v in rng.integers(0, 5, n)],
                          dtype=object),
            "x": rng.normal(10, 3, n),
            "y": rng.exponential(5, n),
        }
    )
    dim = Table.from_columns(
        {
            "k": np.arange(50, dtype=np.int64),
            "region": np.array(
                ["north" if i % 2 else "south" for i in range(50)],
                dtype=object,
            ),
        }
    )
    cat = Catalog()
    cat.register("fact", fact, streamed=True)
    cat.register("dim", dim, streamed=False)
    return cat, fact, dim


def run(sql, cat):
    query = bind_statement(parse_sql(sql), cat)
    tables = {name: cat.get(name) for name in cat}
    return BatchExecutor(tables).execute(query)


class TestScansAndFilters:
    def test_projection_only(self, data):
        cat, fact, _ = data
        out = run("SELECT x FROM fact", cat)
        np.testing.assert_array_equal(out.column("x"), fact.column("x"))

    def test_where_filter(self, data):
        cat, fact, _ = data
        out = run("SELECT x FROM fact WHERE x > 12", cat)
        assert out.num_rows == int((fact.column("x") > 12).sum())

    def test_expression_projection(self, data):
        cat, fact, _ = data
        out = run("SELECT x + y AS s FROM fact", cat)
        np.testing.assert_allclose(
            out.column("s"), fact.column("x") + fact.column("y")
        )

    def test_order_by_limit(self, data):
        cat, fact, _ = data
        out = run("SELECT x FROM fact ORDER BY x DESC LIMIT 3", cat)
        expected = np.sort(fact.column("x"))[::-1][:3]
        np.testing.assert_allclose(out.column("x"), expected)


class TestAggregates:
    def test_global_aggregates(self, data):
        cat, fact, _ = data
        out = run(
            "SELECT AVG(x) AS m, SUM(y) AS s, COUNT(*) AS n, "
            "MIN(x) AS lo, MAX(x) AS hi, STDEV(x) AS sd FROM fact",
            cat,
        )
        row = out.to_pylist()[0]
        assert row["m"] == pytest.approx(fact.column("x").mean())
        assert row["s"] == pytest.approx(fact.column("y").sum())
        assert row["n"] == 2000
        assert row["lo"] == pytest.approx(fact.column("x").min())
        assert row["hi"] == pytest.approx(fact.column("x").max())
        assert row["sd"] == pytest.approx(np.std(fact.column("x"), ddof=1))

    def test_group_by_matches_numpy(self, data):
        cat, fact, _ = data
        out = run("SELECT g, AVG(x) AS m FROM fact GROUP BY g", cat)
        for row in out.to_pylist():
            mask = fact.column("g") == row["g"]
            assert row["m"] == pytest.approx(fact.column("x")[mask].mean())

    def test_having(self, data):
        cat, fact, _ = data
        out = run(
            "SELECT g, COUNT(*) AS n FROM fact GROUP BY g "
            "HAVING COUNT(*) > 400",
            cat,
        )
        for row in out.to_pylist():
            assert row["n"] > 400

    def test_scale_applies_to_sum_count_not_avg(self, data):
        cat, fact, _ = data
        query = bind_statement(
            parse_sql("SELECT SUM(x) AS s, COUNT(*) AS n, AVG(x) AS m "
                      "FROM fact"), cat
        )
        tables = {name: cat.get(name) for name in cat}
        out = BatchExecutor(tables).execute(query, scale=2.0)
        row = out.to_pylist()[0]
        assert row["s"] == pytest.approx(2 * fact.column("x").sum())
        assert row["n"] == pytest.approx(2 * 2000)
        assert row["m"] == pytest.approx(fact.column("x").mean())

    def test_quantile(self, data):
        cat, fact, _ = data
        out = run("SELECT QUANTILE(x, 0.5) AS med FROM fact", cat)
        assert out.to_pylist()[0]["med"] == pytest.approx(
            np.median(fact.column("x")), abs=0.3
        )

    def test_empty_input_global_aggregate(self, data):
        cat, _, _ = data
        out = run("SELECT COUNT(*) AS n FROM fact WHERE x > 1e9", cat)
        assert out.to_pylist() == [{"n": 0.0}]


class TestSubqueries:
    def test_scalar(self, data):
        cat, fact, _ = data
        out = run(
            "SELECT COUNT(*) AS n FROM fact WHERE x > "
            "(SELECT AVG(x) FROM fact)",
            cat,
        )
        expected = int((fact.column("x") > fact.column("x").mean()).sum())
        assert out.to_pylist()[0]["n"] == expected

    def test_keyed_correlated(self, data):
        cat, fact, _ = data
        out = run(
            "SELECT COUNT(*) AS n FROM fact WHERE x > "
            "(SELECT AVG(x) FROM fact f WHERE f.k = fact.k)",
            cat,
        )
        x, k = fact.column("x"), fact.column("k")
        means = {key: x[k == key].mean() for key in np.unique(k)}
        expected = sum(
            1 for xi, ki in zip(x, k) if xi > means[ki]
        )
        assert out.to_pylist()[0]["n"] == expected

    def test_set_membership(self, data):
        cat, fact, _ = data
        out = run(
            "SELECT COUNT(*) AS n FROM fact WHERE k IN "
            "(SELECT k FROM fact GROUP BY k HAVING SUM(y) > 200)",
            cat,
        )
        y, k = fact.column("y"), fact.column("k")
        big = {key for key in np.unique(k) if y[k == key].sum() > 200}
        expected = sum(1 for ki in k if ki in big)
        assert out.to_pylist()[0]["n"] == expected

    def test_scalar_helper(self, data):
        cat, _, _ = data
        query = bind_statement(parse_sql("SELECT AVG(x) FROM fact"), cat)
        tables = {name: cat.get(name) for name in cat}
        executor = BatchExecutor(tables)
        assert isinstance(executor.scalar(query), float)

    def test_scalar_helper_rejects_tables(self, data):
        cat, _, _ = data
        query = bind_statement(
            parse_sql("SELECT g, AVG(x) FROM fact GROUP BY g"), cat
        )
        tables = {name: cat.get(name) for name in cat}
        with pytest.raises(ExecutionError, match="1x1"):
            BatchExecutor(tables).scalar(query)


class TestJoins:
    def test_dimension_join_aggregate(self, data):
        cat, fact, dim = data
        out = run(
            "SELECT region, COUNT(*) AS n FROM fact "
            "JOIN dim ON fact.k = dim.k GROUP BY region ORDER BY region",
            cat,
        )
        region_of = dict(zip(dim.column("k"), dim.column("region")))
        counts = {"north": 0, "south": 0}
        for ki in fact.column("k"):
            counts[region_of[ki]] += 1
        rows = {r["region"]: r["n"] for r in out.to_pylist()}
        assert rows == counts

    def test_hash_join_inner_drops_unmatched(self):
        left = Table.from_columns({"k": np.array([1, 2, 3], dtype=np.int64),
                                   "v": np.array([10.0, 20.0, 30.0])})
        right = Table.from_columns({"k": np.array([2, 3], dtype=np.int64),
                                    "w": np.array([200.0, 300.0])})
        out = hash_join(left, right, [("k", "k")], "inner")
        assert out.column("v").tolist() == [20.0, 30.0]
        assert out.column("w").tolist() == [200.0, 300.0]

    def test_hash_join_left_fills(self):
        left = Table.from_columns({"k": np.array([1, 2], dtype=np.int64)})
        right = Table.from_columns({"k": np.array([2], dtype=np.int64),
                                    "w": np.array([5.0])})
        out = hash_join(left, right, [("k", "k")], "left")
        assert out.num_rows == 2
        assert np.isnan(out.column("w")[0]) and out.column("w")[1] == 5.0

    def test_duplicate_build_keys_rejected(self):
        left = Table.from_columns({"k": np.array([1], dtype=np.int64)})
        right = Table.from_columns({"k": np.array([1, 1], dtype=np.int64),
                                    "w": np.array([1.0, 2.0])})
        with pytest.raises(ExecutionError, match="duplicate"):
            hash_join(left, right, [("k", "k")])

    def test_rows_processed_counted(self, data):
        cat, _, _ = data
        query = bind_statement(parse_sql("SELECT AVG(x) FROM fact"), cat)
        tables = {name: cat.get(name) for name in cat}
        executor = BatchExecutor(tables)
        executor.execute(query)
        assert executor.last_rows_processed == 2000
