"""Unit tests for the plan rewriter (optimizer pass)."""

import numpy as np
import pytest

from repro.engine import BatchExecutor
from repro.expr.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    InSubquery,
    Literal,
    Negate,
    SubqueryRef,
)
from repro.plan import (
    Filter,
    Join,
    bind_statement,
    fold_constants,
    normalize_predicate,
    rewrite_query,
)
from repro.sql import parse_sql
from repro.storage import Catalog, Table


class TestConstantFolding:
    def test_arithmetic_folds(self):
        expr = BinaryOp("*", Literal(0.2), Literal(5.0))
        out = fold_constants(expr)
        assert isinstance(out, Literal) and out.value == 1.0

    def test_nested_folds(self):
        expr = BinaryOp("+", BinaryOp("*", Literal(2), Literal(3)),
                        Literal(4))
        out = fold_constants(expr)
        assert isinstance(out, Literal) and out.value == 10

    def test_column_blocks_fold(self):
        expr = BinaryOp("+", ColumnRef("x"), Literal(1))
        out = fold_constants(expr)
        assert isinstance(out, BinaryOp)

    def test_partial_fold_inside_comparison(self):
        expr = Comparison("<", ColumnRef("x"),
                          BinaryOp("/", Literal(10.0), Literal(4.0)))
        out = fold_constants(expr)
        assert isinstance(out.right, Literal) and out.right.value == 2.5

    def test_division_by_zero_folds_to_zero(self):
        out = fold_constants(BinaryOp("/", Literal(1.0), Literal(0.0)))
        assert out.value == 0.0

    def test_negate_literal(self):
        out = fold_constants(Negate(Literal(3.0)))
        assert isinstance(out, Literal) and out.value == -3.0

    def test_booleans_not_arithmetic(self):
        expr = BinaryOp("+", Literal(True), Literal(1))
        out = fold_constants(expr)
        assert isinstance(out, BinaryOp)  # bools are not folded as numbers


class TestPredicateNormalization:
    def test_not_comparison(self):
        pred = BooleanOp("NOT", [Comparison("<", ColumnRef("x"),
                                            Literal(1))])
        out = normalize_predicate(pred)
        assert isinstance(out, Comparison) and out.op == ">="

    def test_double_negation(self):
        inner = Comparison("=", ColumnRef("x"), Literal(1))
        pred = BooleanOp("NOT", [BooleanOp("NOT", [inner])])
        out = normalize_predicate(pred)
        assert out.sql() == inner.sql()

    def test_de_morgan(self):
        a = Comparison("<", ColumnRef("x"), Literal(1))
        b = Comparison(">", ColumnRef("x"), Literal(5))
        pred = BooleanOp("NOT", [BooleanOp("AND", [a, b])])
        out = normalize_predicate(pred)
        assert isinstance(out, BooleanOp) and out.op == "OR"
        assert out.operands[0].op == ">="
        assert out.operands[1].op == "<="

    def test_not_in_subquery(self):
        pred = BooleanOp("NOT", [InSubquery(ColumnRef("k"), 0)])
        out = normalize_predicate(pred)
        assert isinstance(out, InSubquery) and out.negated

    def test_uncertain_comparison_negation_preserves_slots(self):
        pred = BooleanOp("NOT", [
            Comparison(">", ColumnRef("x"), SubqueryRef(0))
        ])
        out = normalize_predicate(pred)
        assert out.op == "<=" and out.subquery_slots() == {0}


@pytest.fixture
def data():
    rng = np.random.default_rng(17)
    n = 1500
    fact = Table.from_columns({
        "k": rng.integers(0, 10, n).astype(np.int64),
        "x": rng.normal(0, 1, n),
        "y": rng.exponential(1, n),
    })
    dim = Table.from_columns({
        "k": np.arange(10, dtype=np.int64),
        "w": rng.uniform(0, 1, 10),
    })
    cat = Catalog()
    cat.register("fact", fact, streamed=True)
    cat.register("dim", dim, streamed=False)
    return cat, {"fact": fact, "dim": dim}


class TestPlanRewrites:
    def test_filter_pushed_below_inner_join(self, data):
        cat, tables = data
        query = bind_statement(parse_sql(
            "SELECT SUM(w) FROM fact JOIN dim ON fact.k = dim.k "
            "WHERE x > 0 AND w < 0.5"
        ), cat)
        rewritten = rewrite_query(query)
        agg_input = rewritten.plan.input.input  # Project > Aggregate > ?
        # Top filter keeps only the w-conjunct; x-conjunct moved below.
        assert isinstance(agg_input, Filter)
        assert agg_input.predicate.references() == {"w"}
        join = agg_input.input
        assert isinstance(join, Join)
        assert isinstance(join.left, Filter)
        assert join.left.predicate.references() == {"x"}

    def test_left_join_not_pushed(self, data):
        cat, tables = data
        query = bind_statement(parse_sql(
            "SELECT SUM(x) FROM fact LEFT JOIN dim ON fact.k = dim.k "
            "WHERE x > 0"
        ), cat)
        rewritten = rewrite_query(query)
        node = rewritten.plan.input.input
        assert isinstance(node, Filter)
        assert isinstance(node.input, Join)

    def test_rewrite_preserves_results(self, data):
        cat, tables = data
        sql = ("SELECT k, SUM(x * (2 + 3)) AS s FROM fact "
               "JOIN dim ON fact.k = dim.k "
               "WHERE NOT (x < 0 AND w < 2) GROUP BY k ORDER BY k")
        query = bind_statement(parse_sql(sql), cat)
        rewritten = rewrite_query(query)
        executor = BatchExecutor(tables)
        a = executor.execute(query)
        b = executor.execute(rewritten)
        np.testing.assert_allclose(
            a.column("s").astype(float), b.column("s").astype(float),
            rtol=1e-12,
        )

    def test_rewrite_applies_to_subqueries(self, data):
        cat, tables = data
        query = bind_statement(parse_sql(
            "SELECT AVG(y) FROM fact WHERE x > "
            "(SELECT (0.5 * 2.0) * AVG(x) FROM fact)"
        ), cat)
        rewritten = rewrite_query(query)
        sub_plan = rewritten.subqueries[0].plan
        value_expr = sub_plan.exprs[-1][0]
        # (0.5 * 2.0) folded into 1.0.
        assert "1.0" in value_expr.sql()

    def test_session_sql_applies_rewrites(self, data):
        from repro import GolaConfig, GolaSession

        cat, tables = data
        session = GolaSession(GolaConfig(num_batches=2,
                                         bootstrap_trials=8))
        session.register_table("fact", tables["fact"])
        query = session.sql(
            "SELECT COUNT(*) FROM fact WHERE NOT x < 0"
        )
        filt = query.query.plan.input.input
        assert isinstance(filt, Filter)
        assert isinstance(filt.predicate, Comparison)
        assert filt.predicate.op == ">="

    def test_online_still_exact_after_rewrites(self, data):
        from repro import GolaConfig, GolaSession

        cat, tables = data
        session = GolaSession(GolaConfig(num_batches=3,
                                         bootstrap_trials=12, seed=6))
        session.register_table("fact", tables["fact"], streamed=True)
        session.register_table("dim", tables["dim"], streamed=False)
        sql = ("SELECT SUM(y) AS s FROM fact JOIN dim ON fact.k = dim.k "
               "WHERE w < 0.8 AND y > (SELECT (2 - 1) * AVG(y) FROM fact)")
        query = session.sql(sql)
        exact = session.execute_batch(query)
        last = query.run_to_completion()
        assert last.estimate == pytest.approx(
            float(exact.column("s")[0]), rel=1e-9
        )
