"""Unit tests for the HTML report renderer."""

import numpy as np
import pytest

from repro.core.result import ColumnErrors, OnlineSnapshot
from repro.frontends import render_html_report, write_html_report
from repro.storage import Table


def scalar_snapshot(i, k, value, half_width, rebuilds=()):
    table = Table.from_columns({"v": np.array([value])})
    return OnlineSnapshot(
        batch_index=i, num_batches=k, table=table,
        errors={"v": ColumnErrors(
            lows=np.array([value - half_width]),
            highs=np.array([value + half_width]),
            rel_stdev=np.array([half_width / max(value, 1e-9)]),
        )},
        uncertain_sizes={"main": 5 * i}, rows_processed={"main": 100},
        rebuilds=list(rebuilds), elapsed_s=0.01, confidence=0.95,
    )


@pytest.fixture
def snapshots():
    return [
        scalar_snapshot(i, 4, 100.0 + i, 10.0 / i,
                        rebuilds=["main"] if i == 3 else ())
        for i in range(1, 5)
    ]


class TestRenderHtml:
    def test_is_complete_document(self, snapshots):
        doc = render_html_report(snapshots, sql="SELECT AVG(v) FROM t")
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.rstrip().endswith("</html>")
        assert "SELECT AVG(v) FROM t" in doc

    def test_contains_trajectory_svg(self, snapshots):
        doc = render_html_report(snapshots)
        assert "<svg" in doc and "polyline" in doc and "polygon" in doc

    def test_progress_table_rows(self, snapshots):
        doc = render_html_report(snapshots)
        # One row per batch, rebuild batch highlighted.
        assert doc.count("<tr") >= 5
        assert 'class="rebuild"' in doc

    def test_escapes_untrusted_text(self, snapshots):
        doc = render_html_report(
            snapshots, title="<script>alert(1)</script>"
        )
        assert "<script>" not in doc
        assert "&lt;script&gt;" in doc

    def test_grouped_result_without_trajectory(self):
        table = Table.from_columns({
            "g": np.array(["a", "b"], dtype=object),
            "n": np.array([1.0, 2.0]),
        })
        snap = OnlineSnapshot(
            batch_index=1, num_batches=2, table=table, errors={},
            uncertain_sizes={}, rows_processed={}, rebuilds=[],
            elapsed_s=0.0, confidence=0.95,
        )
        doc = render_html_report([snap])
        assert "no scalar trajectory" in doc or "<svg" not in doc
        assert "<td>a</td>" in doc

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_html_report([])

    def test_write_roundtrip(self, snapshots, tmp_path):
        path = tmp_path / "report.html"
        write_html_report(snapshots, path, title="run")
        text = path.read_text()
        assert "run" in text and "</html>" in text

    def test_real_run_report(self, session, sbi_sql, tmp_path):
        snaps = list(session.sql(sbi_sql).run_online())
        path = tmp_path / "sbi.html"
        write_html_report(snaps, path, sql=sbi_sql)
        text = path.read_text()
        assert "Estimate trajectory" in text
        assert f"{len(snaps)} of {len(snaps)} mini-batches" in text
