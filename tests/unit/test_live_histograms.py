"""Live telemetry primitives: log buckets, windows, sink rotation.

The SLO numbers the serve layer exports are only trustworthy if the
underlying sketch is: quantiles must stay within one log bucket of the
exact order statistic for *any* input, and merges must form a
commutative monoid so per-worker histograms combine exactly — both
checked property-style here, against numpy as the oracle.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    GROWTH,
    Histogram,
    LogBuckets,
    SlidingWindow,
    WindowedHistogram,
    bucket_key,
    bucket_upper_edge,
    quantile_from_cumulative,
)
from repro.obs.sinks import JsonlSink

values_strategy = st.lists(
    st.one_of(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        st.just(0.0),
        st.floats(min_value=1e-6, max_value=10.0),
    ),
    min_size=1, max_size=200,
)


class TestBucketKey:
    def test_zero_and_signs(self):
        assert bucket_key(0.0) == (0, 0)
        assert bucket_key(1.0) == (1, 0)
        assert bucket_key(-1.0) == (-1, 0)
        assert bucket_key(2.0)[1] == 8  # one octave = 8 buckets

    def test_edges_bracket_the_value(self):
        for value in (0.013, 1.0, 7.25, 1e12, -3.7, -1e-9):
            sign, index = bucket_key(value)
            upper = bucket_upper_edge(sign, index)
            if value > 0:
                assert value <= upper <= value * GROWTH * (1 + 1e-12)
            else:
                # Negative upper edge is the end closest to zero.
                assert value <= upper
                assert abs(upper) >= abs(value) / GROWTH * (1 - 1e-12)

    def test_extreme_index_overflows_to_inf(self):
        assert bucket_upper_edge(1, 10**6) == math.inf
        assert bucket_upper_edge(-1, 10**6) == -math.inf


class TestLogBuckets:
    def test_empty_quantile_is_nan(self):
        assert math.isnan(LogBuckets().quantile(0.5))

    def test_nan_observations_ignored(self):
        buckets = LogBuckets()
        buckets.observe(float("nan"))
        buckets.observe(1.0)
        assert buckets.count == 1

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LogBuckets().quantile(1.5)

    def test_state_dict_round_trip(self):
        buckets = LogBuckets()
        for value in (0.0, 0.5, -3.0, 7.0, 7.1):
            buckets.observe(value)
        # JSON round trip stringifies dict keys; from_state re-ints them.
        state = json.loads(json.dumps(buckets.state_dict()))
        assert LogBuckets.from_state(state) == buckets

    def test_memory_is_bounded_by_buckets_not_count(self):
        buckets = LogBuckets()
        for i in range(10_000):
            buckets.observe(1.0 + (i % 7) * 1e-4)
        assert buckets.count == 10_000
        assert buckets.num_buckets <= 2

    def test_cumulative_is_monotone_and_total(self):
        buckets = LogBuckets()
        rng = np.random.default_rng(5)
        for value in rng.lognormal(0, 2, 500):
            buckets.observe(float(value) * (1 if value > 1 else -1))
        pairs = buckets.cumulative()
        edges = [e for e, _ in pairs]
        counts = [c for _, c in pairs]
        assert edges == sorted(edges)
        assert counts == sorted(counts)
        assert counts[-1] == buckets.count

    @settings(max_examples=120, deadline=None)
    @given(values=values_strategy,
           q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_one_bucket_of_exact(self, values, q):
        """q-quantile lands in exactly the bucket holding the exact
        order statistic ``sorted(v)[floor(q * (n - 1))]``."""
        buckets = LogBuckets()
        for value in values:
            buckets.observe(value)
        exact = float(np.sort(np.asarray(values))[
            math.floor(q * (len(values) - 1))
        ])
        got = buckets.quantile(q)
        assert got == bucket_upper_edge(*bucket_key(exact))
        if exact > 0:
            assert exact <= got <= exact * GROWTH * (1 + 1e-9)
        elif exact < 0:
            assert exact <= got <= 0
            assert abs(got) >= abs(exact) / GROWTH * (1 - 1e-9)
        else:
            assert got == 0.0

    @settings(max_examples=60, deadline=None)
    @given(a=values_strategy, b=values_strategy, c=values_strategy)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        """Worker histograms combine exactly, in any merge order."""
        def build(values):
            out = LogBuckets()
            for value in values:
                out.observe(value)
            return out

        ha, hb, hc = build(a), build(b), build(c)
        assert ha.merge(hb) == hb.merge(ha)
        assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))
        # Merging equals observing the concatenated stream.
        assert ha.merge(hb).merge(hc) == build(a + b + c)

    @settings(max_examples=40, deadline=None)
    @given(values=values_strategy,
           q=st.floats(min_value=0.0, max_value=1.0))
    def test_cumulative_read_side_matches(self, values, q):
        """A scraper re-deriving quantiles from exported cumulative
        buckets gets the same answer as the in-process sketch."""
        buckets = LogBuckets()
        for value in values:
            buckets.observe(value)
        pairs = buckets.cumulative()
        if all(math.isfinite(edge) for edge, _ in pairs):
            assert quantile_from_cumulative(pairs, q) == buckets.quantile(q)

    def test_quantile_from_cumulative_inf_falls_back(self):
        pairs = [(1.0, 3), (math.inf, 4)]
        assert quantile_from_cumulative(pairs, 1.0) == 1.0
        assert math.isnan(quantile_from_cumulative([], 0.5))


class TestHistogramBackingBuckets:
    """Satellite: ``obs.Histogram`` carries mergeable log buckets."""

    def test_snapshot_quantiles(self):
        hist = Histogram()
        for value in (1.0, 2.0, 4.0, 8.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.count == 4
        assert 2.0 <= snap.quantile(0.5) <= 2.0 * GROWTH

    def test_snapshot_merge_keeps_buckets(self):
        h1, h2 = Histogram(), Histogram()
        for value in (1.0, 2.0):
            h1.observe(value)
        h2.observe(100.0)
        merged = h1.snapshot().merge(h2.snapshot())
        assert merged.count == 3
        assert merged.buckets.count == 3
        assert merged.quantile(1.0) >= 100.0


class TestSlidingWindow:
    def test_expiry_with_fake_clock(self):
        window = SlidingWindow(10.0, slots=5, clock=lambda: 0.0)
        window.observe(1.0, now=0.0)
        window.observe(3.0, now=3.0)
        snap = window.snapshot(now=5.0)
        assert snap.count == 2
        assert snap.total == 4.0
        assert snap.rate == pytest.approx(0.2)
        assert snap.mean == pytest.approx(2.0)
        # Slide past the horizon: the first slot expires first.
        assert window.snapshot(now=11.5).count == 1
        assert window.snapshot(now=30.0).count == 0
        assert math.isnan(window.snapshot(now=30.0).mean)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(0.0)
        with pytest.raises(ValueError):
            SlidingWindow(10.0, slots=0)

    def test_windowed_histogram_spans(self):
        clock = [0.0]
        hist = WindowedHistogram(clock=lambda: clock[0])
        hist.observe(2.0)
        clock[0] = 30.0
        snaps = hist.snapshots()
        assert set(snaps) == {"10s", "1m", "5m"}
        assert snaps["10s"].count == 0  # expired from the short window
        assert snaps["1m"].count == 1
        assert snaps["5m"].count == 1


class TestJsonlRotation:
    """Satellite: owned JSONL sinks roll over at size/line caps."""

    def _lines(self, path):
        with open(path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh]

    def test_rotates_on_byte_cap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path), max_bytes=64, backups=2)
        for i in range(40):
            sink.emit({"seq": i})
        sink.close()
        assert path.exists()
        assert (tmp_path / "trace.jsonl.1").exists()
        assert (tmp_path / "trace.jsonl.2").exists()
        assert not (tmp_path / "trace.jsonl.3").exists()
        # No records are lost across the live file and its backups, and
        # the newest records are in the live file.
        kept = (self._lines(str(path) + ".2") + self._lines(str(path) + ".1")
                + self._lines(path))
        seqs = [r["seq"] for r in kept]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 39

    def test_rotates_on_line_cap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path), max_lines=5, backups=1)
        for i in range(12):
            sink.emit({"seq": i})
        sink.close()
        assert len(self._lines(path)) <= 5
        assert (tmp_path / "trace.jsonl.1").exists()
        assert not (tmp_path / "trace.jsonl.2").exists()

    def test_borrowed_file_never_rotates(self, tmp_path):
        path = tmp_path / "borrowed.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            sink = JsonlSink(fh, max_bytes=8)
            for i in range(20):
                sink.emit({"seq": i})
            sink.close()
        assert len(self._lines(path)) == 20
        assert not (tmp_path / "borrowed.jsonl.1").exists()

    def test_no_caps_means_no_rotation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        for i in range(50):
            sink.emit({"seq": i})
        sink.close()
        assert len(self._lines(path)) == 50
        assert not (tmp_path / "trace.jsonl.1").exists()
