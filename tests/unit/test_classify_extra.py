"""Extra classifier coverage: CASE intervals, Between, rewrite synergy."""

import numpy as np
import pytest

from repro.core import IntervalEnv, ScalarSlotState, TRI_FALSE, TRI_TRUE, TRI_UNKNOWN
from repro.core.classify import interval_eval, tri_eval
from repro.core.delta import _analyze_guard
from repro.estimate import VariationRange
from repro.expr.expressions import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Environment,
    InList,
    Literal,
    SubqueryRef,
)
from repro.plan import normalize_predicate
from repro.storage import Table


@pytest.fixture
def table():
    return Table.from_columns({"x": np.array([0.0, 5.0, 10.0])})


def env(lo, hi):
    mid = (lo + hi) / 2
    state = ScalarSlotState(
        slot=0, estimate=mid, replicas=np.array([lo, hi]),
        vrange=VariationRange(lo, hi),
    )
    return IntervalEnv(slots={0: state},
                       point=Environment(scalars={0: mid}))


class TestCaseIntervals:
    def test_certain_guard_selects_branch(self, table):
        # CASE WHEN x > 4 THEN u ELSE 0 END: rows with x<=4 get [0,0].
        expr = CaseWhen(
            [(Comparison(">", ColumnRef("x"), Literal(4)), SubqueryRef(0))],
            Literal(0.0),
        )
        low, high = interval_eval(expr, table, env(2.0, 3.0))
        assert (low[0], high[0]) == (0.0, 0.0)
        assert (low[1], high[1]) == (2.0, 3.0)

    def test_uncertain_guard_unions_branches(self, table):
        # CASE WHEN x > u THEN 100 ELSE 0 END with u in [4, 6]:
        # x = 5 is undecided -> interval spans both branch values.
        expr = CaseWhen(
            [(Comparison(">", ColumnRef("x"), SubqueryRef(0)),
              Literal(100.0))],
            Literal(0.0),
        )
        low, high = interval_eval(expr, table, env(4.0, 6.0))
        assert (low[0], high[0]) == (0.0, 0.0)       # x=0: else only
        assert (low[1], high[1]) == (0.0, 100.0)     # x=5: both
        assert (low[2], high[2]) == (100.0, 100.0)   # x=10: then only


class TestBetweenTri:
    def test_between_with_uncertain_bound(self, table):
        # x BETWEEN u AND 8 with u in [4, 6].
        expr = Between(ColumnRef("x"), SubqueryRef(0), Literal(8.0))
        tri = tri_eval(expr, table, env(4.0, 6.0))
        assert tri.tolist() == [TRI_FALSE, TRI_UNKNOWN, TRI_FALSE]

    def test_between_fully_decided(self, table):
        expr = Between(ColumnRef("x"), SubqueryRef(0), Literal(20.0))
        tri = tri_eval(expr, table, env(1.0, 2.0))
        assert tri.tolist() == [TRI_FALSE, TRI_TRUE, TRI_TRUE]


class TestInListTri:
    def test_uncertain_value_unknown_unless_degenerate(self, table):
        expr = InList(SubqueryRef(0), [5.0])
        tri = tri_eval(expr, table, env(4.0, 6.0))
        assert (tri == TRI_UNKNOWN).all()
        tri2 = tri_eval(expr, table, env(5.0, 5.0))
        assert (tri2 == TRI_TRUE).all()
        tri3 = tri_eval(InList(SubqueryRef(0), [7.0]), table, env(5.0, 5.0))
        assert (tri3 == TRI_FALSE).all()


class TestModuloConservative:
    def test_modulo_over_uncertain_is_unbounded(self, table):
        expr = BinaryOp("%", SubqueryRef(0), Literal(3))
        low, high = interval_eval(expr, table, env(4.0, 6.0))
        assert np.isneginf(low).all() and np.isposinf(high).all()


class TestRewriteClassifySynergy:
    def test_normalized_not_gets_decision_guard(self):
        """NOT (x <= u) normalizes to x > u, which the fast decision
        guard handles; the raw NOT form would fall back."""
        raw = BooleanOp("NOT", [
            Comparison("<=", ColumnRef("x"), SubqueryRef(0))
        ])
        kind_raw, _ = _analyze_guard(raw)
        assert kind_raw == "fallback"
        normalized = normalize_predicate(raw)
        kind_norm, guard = _analyze_guard(normalized)
        assert kind_norm == "decision" and guard.op == ">"

    def test_kleene_not_consistent_with_rewrite(self, table):
        raw = BooleanOp("NOT", [
            Comparison("<=", ColumnRef("x"), SubqueryRef(0))
        ])
        normalized = normalize_predicate(raw)
        e = env(4.0, 6.0)
        np.testing.assert_array_equal(
            tri_eval(raw, table, e), tri_eval(normalized, table, e)
        )
