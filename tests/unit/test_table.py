"""Unit tests for the columnar Table/Schema substrate."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.storage import Column, ColumnType, Schema, Table


class TestColumnType:
    def test_infer_int(self):
        assert ColumnType.infer(np.array([1, 2])) is ColumnType.INT64

    def test_infer_float(self):
        assert ColumnType.infer(np.array([1.5])) is ColumnType.FLOAT64

    def test_infer_bool(self):
        assert ColumnType.infer(np.array([True])) is ColumnType.BOOL

    def test_infer_string(self):
        assert ColumnType.infer(np.array(["a"], dtype=object)) \
            is ColumnType.STRING

    def test_is_numeric(self):
        assert ColumnType.INT64.is_numeric
        assert ColumnType.FLOAT64.is_numeric
        assert not ColumnType.STRING.is_numeric
        assert not ColumnType.BOOL.is_numeric


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("a", ColumnType.INT64),
                    Column("a", ColumnType.FLOAT64)])

    def test_field_lookup(self):
        s = Schema([Column("a", ColumnType.INT64)])
        assert s.field("a").ctype is ColumnType.INT64
        with pytest.raises(SchemaError, match="unknown column"):
            s.field("b")

    def test_select_preserves_order(self):
        s = Schema([Column("a", ColumnType.INT64),
                    Column("b", ColumnType.FLOAT64),
                    Column("c", ColumnType.STRING)])
        assert s.select(["c", "a"]).names == ["c", "a"]

    def test_contains_and_iter(self):
        s = Schema([Column("a", ColumnType.INT64)])
        assert "a" in s and "b" not in s
        assert [c.name for c in s] == ["a"]

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT64)


class TestTableConstruction:
    def test_from_columns_infers(self, small_table):
        assert small_table.schema.type_of("id") is ColumnType.INT64
        assert small_table.schema.type_of("grp") is ColumnType.STRING
        assert small_table.schema.type_of("x") is ColumnType.FLOAT64
        assert small_table.schema.type_of("flag") is ColumnType.BOOL
        assert small_table.num_rows == 6

    def test_from_rows(self):
        schema = Schema([Column("a", ColumnType.INT64),
                         Column("b", ColumnType.STRING)])
        t = Table.from_rows([(1, "x"), (2, "y")], schema)
        assert t.num_rows == 2
        assert t.column("b").tolist() == ["x", "y"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError, match="ragged"):
            Table.from_columns({"a": np.array([1]), "b": np.array([1, 2])})

    def test_unicode_arrays_become_object(self):
        t = Table.from_columns({"s": np.array(["ab", "cd"])})
        assert t.column("s").dtype == object

    def test_empty(self):
        schema = Schema([Column("a", ColumnType.FLOAT64)])
        t = Table.empty(schema)
        assert t.num_rows == 0 and len(t) == 0

    def test_schema_mismatch_rejected(self):
        schema = Schema([Column("a", ColumnType.INT64)])
        with pytest.raises(SchemaError):
            Table(schema, {"b": np.array([1])})


class TestTableOps:
    def test_take_mask(self, small_table):
        out = small_table.take(small_table.column("x") > 3)
        assert out.column("id").tolist() == [4, 5, 6]

    def test_take_mask_length_checked(self, small_table):
        with pytest.raises(SchemaError):
            small_table.take(np.array([True, False]))

    def test_take_indices(self, small_table):
        out = small_table.take(np.array([5, 0]))
        assert out.column("id").tolist() == [6, 1]

    def test_slice_is_view(self, small_table):
        out = small_table.slice(1, 3)
        assert out.column("id").tolist() == [2, 3]
        assert out.column("x").base is not None  # zero-copy view

    def test_select_and_drop(self, small_table):
        assert small_table.select(["x", "id"]).schema.names == ["x", "id"]
        assert small_table.drop(["grp", "flag"]).schema.names == ["id", "x"]

    def test_rename(self, small_table):
        out = small_table.rename({"x": "value"})
        assert "value" in out.schema and "x" not in out.schema
        assert out.column("value").tolist() == small_table.column("x").tolist()

    def test_with_column_add_and_replace(self, small_table):
        added = small_table.with_column("y", np.arange(6))
        assert added.schema.names[-1] == "y"
        replaced = small_table.with_column("x", np.zeros(6))
        assert replaced.column("x").sum() == 0.0
        assert replaced.schema.names == small_table.schema.names

    def test_concat(self, small_table):
        out = Table.concat([small_table, small_table])
        assert out.num_rows == 12
        assert out.column("id").tolist() == [1, 2, 3, 4, 5, 6] * 2

    def test_concat_schema_mismatch(self, small_table):
        other = small_table.rename({"x": "y"})
        with pytest.raises(SchemaError, match="mismatch"):
            Table.concat([small_table, other])

    def test_concat_empty_list(self):
        with pytest.raises(SchemaError):
            Table.concat([])

    def test_sort_single_key(self, small_table):
        out = small_table.sort_by(["x"], [True])
        assert out.column("x").tolist() == [6.0, 5.0, 4.0, 3.0, 2.0, 1.0]

    def test_sort_multi_key_stable(self, small_table):
        out = small_table.sort_by(["grp", "x"], [False, True])
        assert out.column("grp").tolist() == ["a", "a", "a", "b", "b", "c"]
        assert out.column("x").tolist()[:3] == [5.0, 3.0, 1.0]

    def test_row_and_iter_rows(self, small_table):
        assert small_table.row(0) == (1, "a", 1.0, True)
        assert len(list(small_table.iter_rows())) == 6

    def test_to_pylist(self, small_table):
        rows = small_table.to_pylist()
        assert rows[0]["grp"] == "a" and rows[0]["x"] == 1.0

    def test_head_str_mentions_overflow(self, small_table):
        text = small_table.head_str(2)
        assert "(6 rows)" in text

    def test_getitem(self, small_table):
        assert small_table["id"].tolist() == [1, 2, 3, 4, 5, 6]
