"""Unit tests for expression trees and vectorized evaluation."""

import numpy as np
import pytest

from repro.errors import BindError, ExecutionError
from repro.expr import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Environment,
    FunctionCall,
    FunctionRegistry,
    InList,
    InSubquery,
    Literal,
    Negate,
    SubqueryRef,
    conjoin,
    conjuncts,
    evaluate_mask,
)
from repro.storage import Table


@pytest.fixture
def table():
    return Table.from_columns(
        {
            "a": np.array([1.0, 2.0, 3.0, 4.0]),
            "b": np.array([4.0, 3.0, 2.0, 1.0]),
            "s": np.array(["x", "y", "x", "z"], dtype=object),
        }
    )


class TestBasics:
    def test_literal(self, table):
        assert Literal(5).evaluate(table) == 5

    def test_column_ref(self, table):
        np.testing.assert_array_equal(
            ColumnRef("a").evaluate(table), [1.0, 2.0, 3.0, 4.0]
        )

    def test_references(self):
        expr = BinaryOp("+", ColumnRef("a"), ColumnRef("b"))
        assert expr.references() == {"a", "b"}

    def test_arithmetic(self, table):
        out = BinaryOp("*", ColumnRef("a"), Literal(2)).evaluate(table)
        np.testing.assert_array_equal(out, [2.0, 4.0, 6.0, 8.0])

    def test_division_by_zero_is_zero(self, table):
        out = BinaryOp("/", ColumnRef("a"), Literal(0)).evaluate(table)
        np.testing.assert_array_equal(out, [0.0, 0.0, 0.0, 0.0])
        assert BinaryOp("/", Literal(1.0), Literal(0.0)).evaluate(table) == 0.0

    def test_negate(self, table):
        out = Negate(ColumnRef("a")).evaluate(table)
        np.testing.assert_array_equal(out, [-1.0, -2.0, -3.0, -4.0])

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExecutionError):
            BinaryOp("**", Literal(1), Literal(2))
        with pytest.raises(ExecutionError):
            Comparison("~", Literal(1), Literal(2))


class TestPredicates:
    def test_comparison(self, table):
        out = Comparison("<", ColumnRef("a"), ColumnRef("b")).evaluate(table)
        assert out.tolist() == [True, True, False, False]

    def test_boolean_and_or_not(self, table):
        lt = Comparison("<", ColumnRef("a"), Literal(3))
        gt = Comparison(">", ColumnRef("a"), Literal(1))
        both = BooleanOp("AND", [lt, gt]).evaluate(table)
        assert both.tolist() == [False, True, False, False]
        either = BooleanOp("OR", [lt, gt]).evaluate(table)
        assert either.tolist() == [True, True, True, True]
        negated = BooleanOp("NOT", [lt]).evaluate(table)
        assert negated.tolist() == [False, False, True, True]

    def test_boolean_arity_checked(self):
        with pytest.raises(ExecutionError):
            BooleanOp("AND", [Literal(True)])
        with pytest.raises(ExecutionError):
            BooleanOp("NOT", [Literal(True), Literal(False)])

    def test_between(self, table):
        out = Between(ColumnRef("a"), Literal(2), Literal(3)).evaluate(table)
        assert out.tolist() == [False, True, True, False]

    def test_in_list(self, table):
        out = InList(ColumnRef("s"), ["x", "z"]).evaluate(table)
        assert out.tolist() == [True, False, True, True]

    def test_evaluate_mask_broadcasts_scalar(self, table):
        mask = evaluate_mask(Literal(True), table)
        assert mask.tolist() == [True] * 4


class TestCase:
    def test_first_match_wins(self, table):
        expr = CaseWhen(
            [(Comparison(">", ColumnRef("a"), Literal(3)), Literal(100.0)),
             (Comparison(">", ColumnRef("a"), Literal(1)), Literal(10.0))],
            Literal(0.0),
        )
        out = expr.evaluate(table)
        np.testing.assert_array_equal(out, [0.0, 10.0, 10.0, 100.0])

    def test_missing_else_defaults_zero(self, table):
        expr = CaseWhen(
            [(Comparison(">", ColumnRef("a"), Literal(3)), Literal(1.0))]
        )
        np.testing.assert_array_equal(
            expr.evaluate(table), [0.0, 0.0, 0.0, 1.0]
        )


class TestFunctions:
    def test_builtin(self, table):
        out = FunctionCall("sqrt", [ColumnRef("a")]).evaluate(table)
        np.testing.assert_allclose(out, np.sqrt([1, 2, 3, 4]))

    def test_floor_in_default_registry(self, table):
        out = FunctionCall(
            "floor", [BinaryOp("/", ColumnRef("a"), Literal(2))]
        ).evaluate(table)
        np.testing.assert_array_equal(out, [0.0, 1.0, 1.0, 2.0])

    def test_udf_registration(self, table):
        registry = FunctionRegistry()
        registry.register("double", lambda v: v * 2)
        env = Environment(functions=registry)
        out = FunctionCall("double", [ColumnRef("a")]).evaluate(table, env)
        np.testing.assert_array_equal(out, [2.0, 4.0, 6.0, 8.0])

    def test_duplicate_udf_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", lambda v: v)
        with pytest.raises(BindError):
            registry.register("f", lambda v: v)

    def test_unknown_function(self, table):
        with pytest.raises(BindError, match="unknown function"):
            FunctionCall("nope", []).evaluate(table)

    def test_string_functions(self, table):
        out = FunctionCall("upper", [ColumnRef("s")]).evaluate(table)
        assert out.tolist() == ["X", "Y", "X", "Z"]
        out = FunctionCall("length", [ColumnRef("s")]).evaluate(table)
        assert out.tolist() == [1, 1, 1, 1]

    def test_greatest_least(self, table):
        out = FunctionCall(
            "greatest", [ColumnRef("a"), ColumnRef("b")]
        ).evaluate(table)
        np.testing.assert_array_equal(out, [4.0, 3.0, 3.0, 4.0])


class TestSubqueryRefs:
    def test_scalar_lookup(self, table):
        env = Environment(scalars={0: 2.5})
        assert SubqueryRef(0).evaluate(table, env) == 2.5

    def test_scalar_missing_binding(self, table):
        with pytest.raises(ExecutionError, match="no value bound"):
            SubqueryRef(0).evaluate(table, Environment())

    def test_keyed_lookup_with_default(self, table):
        env = Environment(keyed={1: {"x": 10.0, "y": 20.0}})
        ref = SubqueryRef(1, correlation=ColumnRef("s"), default=-1.0)
        out = ref.evaluate(table, env)
        np.testing.assert_array_equal(out, [10.0, 20.0, 10.0, -1.0])

    def test_in_subquery(self, table):
        env = Environment(key_sets={2: {"x"}})
        out = InSubquery(ColumnRef("s"), 2).evaluate(table, env)
        assert out.tolist() == [True, False, True, False]
        negated = InSubquery(ColumnRef("s"), 2, negated=True)
        assert negated.evaluate(table, env).tolist() == \
            [False, True, False, True]

    def test_subquery_slots_collected(self):
        expr = BooleanOp("AND", [
            Comparison(">", ColumnRef("a"), SubqueryRef(0)),
            InSubquery(ColumnRef("s"), 3),
        ])
        assert expr.subquery_slots() == {0, 3}


class TestConjuncts:
    def test_flatten_nested_ands(self):
        p1 = Comparison(">", ColumnRef("a"), Literal(1))
        p2 = Comparison("<", ColumnRef("a"), Literal(5))
        p3 = InList(ColumnRef("s"), ["x"])
        expr = BooleanOp("AND", [BooleanOp("AND", [p1, p2]), p3])
        assert conjuncts(expr) == [p1, p2, p3]

    def test_or_not_flattened(self):
        expr = BooleanOp("OR", [Literal(True), Literal(False)])
        assert conjuncts(expr) == [expr]

    def test_conjoin_roundtrip(self):
        p1 = Comparison(">", ColumnRef("a"), Literal(1))
        assert conjoin([]) is None
        assert conjoin([p1]) is p1
        both = conjoin([p1, p1])
        assert isinstance(both, BooleanOp) and both.op == "AND"

    def test_sql_rendering(self):
        expr = Comparison(">", ColumnRef("a"), Literal(1))
        assert expr.sql() == "(a > 1)"
        assert Literal("it's").sql() == "'it''s'"
