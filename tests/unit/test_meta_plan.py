"""Unit tests for the online query compiler (meta plans)."""

import numpy as np
import pytest

from repro import GolaConfig, UnsupportedQueryError
from repro.core import compile_meta_plan
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table


@pytest.fixture
def setup():
    rng = np.random.default_rng(9)
    fact = Table.from_columns({
        "k": rng.integers(0, 5, 500).astype(np.int64),
        "x": rng.normal(size=500),
    })
    dim = Table.from_columns({
        "k": np.arange(5, dtype=np.int64),
        "cut": rng.uniform(size=5),
    })
    cat = Catalog()
    cat.register("fact", fact, streamed=True)
    cat.register("dim", dim, streamed=False)
    tables = {"fact": fact, "dim": dim}
    streamed = {"fact": True, "dim": False}
    config = GolaConfig(num_batches=3, bootstrap_trials=8)
    return cat, tables, streamed, config


def compile_sql(sql, setup):
    cat, tables, streamed, config = setup
    query = bind_statement(parse_sql(sql), cat)
    return compile_meta_plan(query, tables, streamed, config)


class TestCompile:
    def test_blocks_in_dependency_order(self, setup):
        plan = compile_sql(
            "SELECT AVG(x) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            setup,
        )
        ids = [b.block_id for b in plan.online_blocks]
        assert ids == ["sub#0", "main"]
        assert plan.main_runtime is plan.runtimes["main"]

    def test_static_subquery_separated(self, setup):
        plan = compile_sql(
            "SELECT AVG(x) FROM fact WHERE x > (SELECT AVG(cut) FROM dim)",
            setup,
        )
        assert [b.block_id for b in plan.online_blocks] == ["main"]
        assert [s.slot for s in plan.static_specs] == [0]

    def test_describe_mentions_strategy(self, setup):
        plan = compile_sql(
            "SELECT AVG(x) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            setup,
        )
        text = plan.describe()
        assert "main" in text and "consumes #0" in text
        assert "uncertain predicate" in text

    def test_describe_static(self, setup):
        plan = compile_sql(
            "SELECT AVG(x) FROM fact WHERE x > (SELECT AVG(cut) FROM dim)",
            setup,
        )
        assert "static" in plan.describe()

    def test_no_streamed_relation_rejected(self, setup):
        cat, tables, streamed, config = setup
        query = bind_statement(
            parse_sql("SELECT AVG(cut) FROM dim"), cat
        )
        with pytest.raises(UnsupportedQueryError, match="streamed"):
            compile_meta_plan(query, tables, streamed, config)

    def test_main_must_scan_streamed(self, setup):
        cat, tables, streamed, config = setup
        query = bind_statement(
            parse_sql(
                "SELECT AVG(cut) FROM dim WHERE cut > "
                "(SELECT AVG(x) FROM fact)"
            ),
            cat,
        )
        # Main scans dim (non-streamed) while the subquery streams fact.
        with pytest.raises(UnsupportedQueryError):
            compile_meta_plan(query, tables, streamed, config)
