"""Unit tests for the colstore partition format and dataset layer."""

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import Table
from repro.storage.colstore import (
    ColstoreDataset,
    PartitionReader,
    convert_table,
    open_dataset,
    write_partition,
)
from repro.storage.colstore.codecs import CODECS, decode_column, encode_column
from repro.storage.colstore.dataset import is_dataset_dir
from repro.faults.quarantine import RowQuarantine
from repro.storage.table import ColumnType


def sample_table(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return Table.from_columns({
        "i": rng.integers(-500, 500, n).astype(np.int64),
        "f": rng.normal(0.0, 10.0, n),
        "b": rng.random(n) < 0.5,
        "s": np.array([f"cat_{v}" for v in rng.integers(0, 7, n)],
                      dtype=object),
    })


def assert_tables_equal(a: Table, b: Table):
    assert a.schema.names == b.schema.names
    for name in a.schema.names:
        x, y = a.column(name), b.column(name)
        assert x.dtype == y.dtype, name
        if x.dtype == object:
            assert x.tolist() == y.tolist(), name
        else:
            np.testing.assert_array_equal(
                x.view(np.uint8), y.view(np.uint8), err_msg=name
            )


class TestPartitionFile:
    @pytest.mark.parametrize("codec", ("auto",) + CODECS)
    def test_round_trip_all_codecs(self, tmp_path, codec):
        table = sample_table()
        path = tmp_path / "p.gcp"
        write_partition(path, table, codec=codec, chunk_rows=128)
        for mmap in (True, False):
            out = PartitionReader(path, mmap=mmap).read_table()
            assert_tables_equal(table, out)

    def test_segments_are_64_byte_aligned(self, tmp_path):
        path = tmp_path / "p.gcp"
        footer = write_partition(path, sample_table(), chunk_rows=128)
        offsets = [seg["offset"] for col in footer["columns"]
                   for seg in col["segments"]]
        assert offsets, "expected at least one segment"
        assert all(off % 64 == 0 for off in offsets)

    def test_nan_payloads_survive(self, tmp_path):
        f = np.array([1.5, np.nan, np.nan, -0.0, 2.5] * 50)
        table = Table.from_columns({"f": f})
        path = tmp_path / "p.gcp"
        write_partition(path, table, chunk_rows=16)
        out = PartitionReader(path).read_table()
        np.testing.assert_array_equal(
            out.column("f").view(np.uint8), f.view(np.uint8)
        )

    def test_zone_maps_in_footer(self, tmp_path):
        table = Table.from_columns({
            "x": np.arange(100, dtype=np.int64),
        })
        path = tmp_path / "p.gcp"
        write_partition(path, table, chunk_rows=32)
        zi = PartitionReader(path).zone_index()
        assert zi.num_chunks == 4
        cz = zi.columns["x"]
        assert cz.lows == [0, 32, 64, 96]
        assert cz.highs == [31, 63, 95, 99]
        assert cz.nulls.sum() == 0

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "p.gcp"
        write_partition(path, sample_table(64))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            PartitionReader(path)

    def test_corrupt_magic_raises(self, tmp_path):
        path = tmp_path / "p.gcp"
        write_partition(path, sample_table(64))
        data = bytearray(path.read_bytes())
        data[:4] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            PartitionReader(path)

    def test_mmap_columns_are_readonly_views(self, tmp_path):
        table = Table.from_columns({
            "i": np.arange(4096, dtype=np.int64),
        })
        path = tmp_path / "p.gcp"
        write_partition(path, table, codec="plain")
        out = PartitionReader(path, mmap=True).read_table()
        arr = out.column("i")
        assert not arr.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            arr[0] = 99


class TestCodecs:
    def test_delta_falls_back_on_wide_span(self):
        arr = np.array([-(2 ** 62), 2 ** 62, 0], dtype=np.int64)
        enc = encode_column(arr, ColumnType.INT64, "delta")
        assert enc.codec == "plain"

    def test_unknown_codec_raises(self):
        with pytest.raises(StorageError):
            encode_column(np.arange(3, dtype=np.int64),
                          ColumnType.INT64, "zstd")
        with pytest.raises(StorageError):
            decode_column("zstd", [], {}, ColumnType.INT64, 3)

    def test_meta_is_json_safe(self):
        table = sample_table(256)
        for name in table.schema.names:
            enc = encode_column(table.column(name),
                                table.schema.type_of(name), "auto")
            json.loads(json.dumps(enc.meta))


class TestDataset:
    def test_convert_and_reopen(self, tmp_path):
        table = sample_table(2000)
        out = tmp_path / "ds"
        convert_table(table, out, num_batches=5, seed=7, shuffle=True)
        assert is_dataset_dir(out)
        ds = open_dataset(out)
        assert isinstance(ds, ColstoreDataset)
        assert ds.num_rows == 2000
        assert ds.num_batches == 5
        assert len(ds.manifest["partitions"]) == 5
        assert sum(r["rows"] for r in ds.manifest["partitions"]) == 2000

    def test_to_table_inverts_shuffle(self, tmp_path):
        table = sample_table(1500)
        ds = open_dataset(convert_table(
            table, tmp_path / "ds", num_batches=4, seed=3, shuffle=True,
        ) and (tmp_path / "ds"))
        assert_tables_equal(table, ds.to_table())

    def test_batches_match_partitioner(self, tmp_path):
        from repro.storage.partition import MiniBatchPartitioner

        table = sample_table(1200)
        ds = open_dataset(convert_table(
            table, tmp_path / "ds", num_batches=3, seed=11, shuffle=True,
        ) and (tmp_path / "ds"))
        expected = MiniBatchPartitioner(3, seed=11,
                                        shuffle=True).partition(table)
        got = ds.batches(prune=False)
        assert len(got) == len(expected)
        for e, g in zip(expected, got):
            assert_tables_equal(e, g)

    def test_batches_carry_zones_only_when_pruning(self, tmp_path):
        ds = open_dataset(convert_table(
            sample_table(600), tmp_path / "ds", num_batches=2, seed=1,
            shuffle=False,
        ) and (tmp_path / "ds"))
        assert getattr(ds.batches(prune=True)[0],
                       "_colstore_zones", None) is not None
        assert getattr(ds.batches(prune=False)[0],
                       "_colstore_zones", None) is None

    def test_zones_dropped_by_row_reordering_ops(self, tmp_path):
        ds = open_dataset(convert_table(
            sample_table(600), tmp_path / "ds", num_batches=2, seed=1,
            shuffle=False,
        ) and (tmp_path / "ds"))
        batch = ds.batches(prune=True)[0]
        taken = batch.take(np.arange(batch.num_rows) % 2 == 0)
        assert getattr(taken, "_colstore_zones", None) is None
        merged = Table.concat([batch, ds.batches(prune=True)[1]])
        assert getattr(merged, "_colstore_zones", None) is None

    def test_quarantine_round_trip(self, tmp_path):
        table = sample_table(400)
        quarantine = RowQuarantine(error_budget=0.1, label="unit")
        quarantine.add(3, "i", "x", "bad int")
        quarantine.add(9, "f", "oops", "bad float")
        quarantine.total_seen = 402
        convert_table(table, tmp_path / "ds", num_batches=2, seed=1,
                      shuffle=False, quarantine=quarantine)
        ds = open_dataset(tmp_path / "ds")
        rows = ds.quarantined_rows
        assert [r.line_number for r in rows] == [3, 9]
        assert rows[0].reason == "bad int"
        manifest = json.loads(
            (tmp_path / "ds" / "manifest.json").read_text()
        )
        assert manifest["quarantine"]["error_budget"] == 0.1
        assert manifest["quarantine"]["total_seen"] == 402

    def test_config_matches(self, tmp_path):
        from repro.config import GolaConfig

        ds = open_dataset(convert_table(
            sample_table(300), tmp_path / "ds", num_batches=4, seed=5,
            shuffle=True,
        ) and (tmp_path / "ds"))
        assert ds.config_matches(
            GolaConfig(num_batches=4, seed=5, shuffle=True)
        )
        assert not ds.config_matches(
            GolaConfig(num_batches=3, seed=5, shuffle=True)
        )
        assert not ds.config_matches(
            GolaConfig(num_batches=4, seed=6, shuffle=True)
        )

    def test_corrupted_partition_detected(self, tmp_path):
        convert_table(sample_table(500), tmp_path / "ds", num_batches=2,
                      seed=1, shuffle=False)
        ds = open_dataset(tmp_path / "ds")
        part = tmp_path / "ds" / ds.manifest["partitions"][0]["file"]
        data = bytearray(part.read_bytes())
        data[len(data) // 2] ^= 0xFF
        part.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            ds.verify()

    def test_lazy_batch_seq_reads_on_demand(self, tmp_path, monkeypatch):
        convert_table(sample_table(900), tmp_path / "ds", num_batches=3,
                      seed=2, shuffle=False)
        ds = open_dataset(tmp_path / "ds")
        opened = []
        original = ds.reader

        def spy(index):
            opened.append(index)
            return original(index)

        monkeypatch.setattr(ds, "reader", spy)
        batches = ds.batches()
        assert opened == []
        batches[1]
        assert opened == [1]
