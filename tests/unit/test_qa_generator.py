"""The qa query/table generators: valid-by-construction, seeded, shrinkable."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GolaConfig, GolaSession
from repro.qa import (
    FuzzCase,
    QueryGenerator,
    QuerySpec,
    TableSpec,
    generate_table,
    random_dim_spec,
    random_fact_spec,
    shrink_candidates,
)


def make_generator(seed=0, rows=512):
    rng = np.random.default_rng(seed)
    fact = random_fact_spec(rng, rows=rows, seed=seed)
    dim = random_dim_spec(rng, fact, seed=seed + 1)
    return QueryGenerator(
        fact, generate_table(fact),
        dims={dim.name: (dim, generate_table(dim))}, seed=seed,
    ), fact, dim


class TestTableSpecs:
    def test_generation_is_deterministic(self):
        rng = np.random.default_rng(3)
        spec = random_fact_spec(rng, rows=256, seed=3)
        a, b = generate_table(spec), generate_table(spec)
        for name in a.schema.names:
            assert np.array_equal(
                np.asarray(a.column(name)), np.asarray(b.column(name))
            )

    def test_spec_round_trips_through_json_dict(self):
        rng = np.random.default_rng(5)
        spec = random_fact_spec(rng, rows=256, seed=5)
        clone = TableSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_shrunk_rows_reuse_column_streams(self):
        # Per-column RNG streams mean halving the row count yields a
        # prefix-like table, so data shrinking stays deterministic.
        rng = np.random.default_rng(7)
        spec = random_fact_spec(rng, rows=512, seed=7)
        small = generate_table(spec.with_rows(256))
        assert small.num_rows == 256


class TestQueryGenerator:
    def test_same_seed_same_queries(self):
        gen_a, _, _ = make_generator(seed=11)
        gen_b, _, _ = make_generator(seed=11)
        assert [gen_a.generate().render() for _ in range(10)] == \
            [gen_b.generate().render() for _ in range(10)]

    def test_different_seeds_differ(self):
        gen_a, _, _ = make_generator(seed=1)
        gen_b, _, _ = make_generator(seed=2)
        a = [gen_a.generate().render() for _ in range(10)]
        b = [gen_b.generate().render() for _ in range(10)]
        assert a != b

    def test_spec_round_trips_through_json_dict(self):
        gen, _, _ = make_generator(seed=13)
        for _ in range(10):
            spec = gen.generate()
            clone = QuerySpec.from_dict(spec.to_dict())
            assert clone.render() == spec.render()

    def test_nested_aggregate_predicates_are_exercised(self):
        gen, _, _ = make_generator(seed=17)
        specs = [gen.generate() for _ in range(40)]
        assert sum(s.uses_subquery for s in specs) >= 20

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_generated_queries_are_valid_by_construction(self, seed):
        """Every generated query must be accepted by the batch engine."""
        gen, fact, dim = make_generator(seed=seed, rows=256)
        session = GolaSession(GolaConfig(num_batches=2,
                                         bootstrap_trials=4, seed=seed))
        session.register_table(fact.name, generate_table(fact),
                               streamed=True)
        session.register_table(dim.name, generate_table(dim),
                               streamed=False)
        session.execute_batch(gen.generate().render())


class TestShrinkCandidates:
    def test_candidates_are_strictly_simpler_and_render(self):
        gen, fact, dim = make_generator(seed=23)
        for _ in range(20):
            spec = gen.generate()
            size = (len(spec.predicates) + len(spec.group_by)
                    + len(spec.aggregates)
                    + (spec.having is not None)
                    + (spec.join is not None)
                    + (spec.order_by is not None))
            for cand in shrink_candidates(spec):
                cand_size = (len(cand.predicates) + len(cand.group_by)
                             + len(cand.aggregates)
                             + (cand.having is not None)
                             + (cand.join is not None)
                             + (cand.order_by is not None))
                assert cand_size < size
                assert cand.render()  # still renders to SQL

    def test_candidates_stay_executable(self):
        gen, fact, dim = make_generator(seed=29, rows=256)
        session = GolaSession(GolaConfig(num_batches=2,
                                         bootstrap_trials=4, seed=29))
        session.register_table(fact.name, generate_table(fact),
                               streamed=True)
        session.register_table(dim.name, generate_table(dim),
                               streamed=False)
        spec = gen.generate()
        for cand in shrink_candidates(spec):
            session.execute_batch(cand.render())


class TestFuzzCaseRoundTrip:
    def test_case_round_trips_through_json_dict(self):
        gen, fact, dim = make_generator(seed=31)
        case = FuzzCase(tables=(fact, dim), query=gen.generate(),
                        num_batches=3, bootstrap_trials=8, seed=31)
        clone = FuzzCase.from_dict(case.to_dict())
        assert clone.sql == case.sql
        assert clone.tables == case.tables
        assert clone.num_batches == 3 and clone.bootstrap_trials == 8
