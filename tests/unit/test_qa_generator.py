"""The qa query/table generators: valid-by-construction, seeded, shrinkable."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GolaConfig, GolaSession
from repro.errors import UnsupportedQueryError
from repro.qa import (
    AggItem,
    FuzzCase,
    QueryGenerator,
    QuerySpec,
    TableSpec,
    WindowItem,
    generate_table,
    random_dim_spec,
    random_fact2_spec,
    random_fact_spec,
    shrink_candidates,
)


def make_generator(seed=0, rows=512):
    rng = np.random.default_rng(seed)
    fact = random_fact_spec(rng, rows=rows, seed=seed)
    dim = random_dim_spec(rng, fact, seed=seed + 1)
    return QueryGenerator(
        fact, generate_table(fact),
        dims={dim.name: (dim, generate_table(dim))}, seed=seed,
    ), fact, dim


def make_deep_generator(seed=0, rows=512):
    rng = np.random.default_rng(seed)
    fact = random_fact_spec(rng, rows=rows, seed=seed, grammar="deep")
    dim = random_dim_spec(rng, fact, seed=seed + 1)
    fact2 = random_fact2_spec(rng, fact, seed=seed + 2)
    gen = QueryGenerator(
        fact, generate_table(fact),
        dims={dim.name: (dim, generate_table(dim))}, seed=seed,
        fact2=(fact2, generate_table(fact2)), grammar="deep",
    )
    return gen, (fact, fact2, dim)


class TestTableSpecs:
    def test_generation_is_deterministic(self):
        rng = np.random.default_rng(3)
        spec = random_fact_spec(rng, rows=256, seed=3)
        a, b = generate_table(spec), generate_table(spec)
        for name in a.schema.names:
            x = np.asarray(a.column(name))
            y = np.asarray(b.column(name))
            # equal_nan: the "nullish" column kind is NaN-heavy by design
            if x.dtype.kind == "f":
                assert np.array_equal(x, y, equal_nan=True)
            else:
                assert np.array_equal(x, y)

    def test_spec_round_trips_through_json_dict(self):
        rng = np.random.default_rng(5)
        spec = random_fact_spec(rng, rows=256, seed=5)
        clone = TableSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_shrunk_rows_reuse_column_streams(self):
        # Per-column RNG streams mean halving the row count yields a
        # prefix-like table, so data shrinking stays deterministic.
        rng = np.random.default_rng(7)
        spec = random_fact_spec(rng, rows=512, seed=7)
        small = generate_table(spec.with_rows(256))
        assert small.num_rows == 256


class TestQueryGenerator:
    def test_same_seed_same_queries(self):
        gen_a, _, _ = make_generator(seed=11)
        gen_b, _, _ = make_generator(seed=11)
        assert [gen_a.generate().render() for _ in range(10)] == \
            [gen_b.generate().render() for _ in range(10)]

    def test_different_seeds_differ(self):
        gen_a, _, _ = make_generator(seed=1)
        gen_b, _, _ = make_generator(seed=2)
        a = [gen_a.generate().render() for _ in range(10)]
        b = [gen_b.generate().render() for _ in range(10)]
        assert a != b

    def test_spec_round_trips_through_json_dict(self):
        gen, _, _ = make_generator(seed=13)
        for _ in range(10):
            spec = gen.generate()
            clone = QuerySpec.from_dict(spec.to_dict())
            assert clone.render() == spec.render()

    def test_nested_aggregate_predicates_are_exercised(self):
        gen, _, _ = make_generator(seed=17)
        specs = [gen.generate() for _ in range(40)]
        assert sum(s.uses_subquery for s in specs) >= 20

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_generated_queries_are_valid_by_construction(self, seed):
        """Every generated query must be accepted by the batch engine."""
        gen, fact, dim = make_generator(seed=seed, rows=256)
        session = GolaSession(GolaConfig(num_batches=2,
                                         bootstrap_trials=4, seed=seed))
        session.register_table(fact.name, generate_table(fact),
                               streamed=True)
        session.register_table(dim.name, generate_table(dim),
                               streamed=False)
        session.execute_batch(gen.generate().render())


class TestShrinkCandidates:
    def test_candidates_are_strictly_simpler_and_render(self):
        gen, fact, dim = make_generator(seed=23)
        for _ in range(20):
            spec = gen.generate()
            size = (len(spec.predicates) + len(spec.group_by)
                    + len(spec.aggregates)
                    + (spec.having is not None)
                    + (spec.join is not None)
                    + (spec.order_by is not None))
            for cand in shrink_candidates(spec):
                cand_size = (len(cand.predicates) + len(cand.group_by)
                             + len(cand.aggregates)
                             + (cand.having is not None)
                             + (cand.join is not None)
                             + (cand.order_by is not None))
                assert cand_size < size
                assert cand.render()  # still renders to SQL

    def test_candidates_stay_executable(self):
        gen, fact, dim = make_generator(seed=29, rows=256)
        session = GolaSession(GolaConfig(num_batches=2,
                                         bootstrap_trials=4, seed=29))
        session.register_table(fact.name, generate_table(fact),
                               streamed=True)
        session.register_table(dim.name, generate_table(dim),
                               streamed=False)
        spec = gen.generate()
        for cand in shrink_candidates(spec):
            session.execute_batch(cand.render())


class TestDeepGrammar:
    def test_deep_constructs_appear_within_a_seeded_run(self):
        gen, _ = make_deep_generator(seed=41)
        specs = [gen.generate() for _ in range(120)]
        rendered = [s.render() for s in specs]
        assert any("DISTINCT" in r for r in rendered)
        assert any("QUANTILE(" in r for r in rendered)
        assert any(s.windows for s in specs)
        assert any(p.kind == "fact2_scalar_sub"
                   for s in specs for p in s.predicates)
        assert any(p.kind == "fact2_keyed_sub"
                   for s in specs for p in s.predicates)
        assert any(p.kind == "empty_group"
                   for s in specs for p in s.predicates)

    def test_window_item_round_trips_through_json_dict(self):
        w = WindowItem(func="SUM", arg="agg_0", order_col="k1",
                       alias="w_0", preceding=3)
        clone = WindowItem.from_dict(w.to_dict())
        assert clone == w
        assert "ROWS 3 PRECEDING" in clone.render()
        bare = WindowItem(func="COUNT", arg=None, order_col="k1",
                          alias="w_1")
        assert WindowItem.from_dict(bare.to_dict()) == bare

    def test_deep_spec_round_trips_through_json_dict(self):
        gen, _ = make_deep_generator(seed=43)
        for _ in range(40):
            spec = gen.generate()
            clone = QuerySpec.from_dict(spec.to_dict())
            assert clone.render() == spec.render()

    def test_deep_queries_execute_or_reject_cleanly(self):
        # Deep productions may legitimately exceed the engine surface;
        # what they must never do is crash with an internal error.
        gen, specs = make_deep_generator(seed=47, rows=256)
        session = GolaSession(GolaConfig(num_batches=2,
                                         bootstrap_trials=4, seed=47))
        for spec in specs:
            session.register_table(spec.name, generate_table(spec),
                                   streamed=spec.streamed)
        for _ in range(40):
            try:
                session.execute_batch(gen.generate().render())
            except UnsupportedQueryError:
                pass

    def test_window_shrink_drops_windows_first(self):
        spec = QuerySpec(
            table="fact", group_by=("k1",),
            aggregates=(AggItem("SUM", "x1", "agg_0"),),
            windows=(WindowItem("SUM", "agg_0", "k1", "w_0"),),
            order_by="k1",
        )
        cands = list(shrink_candidates(spec))
        assert any(not c.windows and c.aggregates for c in cands)

    def test_group_by_drop_cascades_to_windows(self):
        spec = QuerySpec(
            table="fact", group_by=("k1",),
            aggregates=(AggItem("SUM", "x1", "agg_0"),),
            windows=(WindowItem("SUM", "agg_0", "k1", "w_0"),),
            order_by=None,
        )
        for cand in shrink_candidates(spec):
            if "k1" not in cand.group_by:
                assert not any(w.order_col == "k1" for w in cand.windows)

    def test_distinct_and_quantile_simplify_in_place(self):
        spec = QuerySpec(
            table="fact", group_by=("k1",),
            aggregates=(
                AggItem("COUNT", "m1", "agg_0", distinct=True),
                AggItem("QUANTILE", "x1", "agg_1", param=0.9),
            ),
        )
        cands = list(shrink_candidates(spec))
        assert any(
            not a.distinct and a.param is None
            for c in cands for a in c.aggregates
        )

    def test_fact2_spec_shares_the_join_key(self):
        rng = np.random.default_rng(53)
        fact = random_fact_spec(rng, rows=512, seed=53, grammar="deep")
        fact2 = random_fact2_spec(rng, fact, seed=55)
        key = fact.columns[0]
        shared = next(c for c in fact2.columns if c.name == key.name)
        assert shared.kind == key.kind and shared.card == key.card
        assert fact2.streamed


class TestFuzzCaseRoundTrip:
    def test_case_round_trips_through_json_dict(self):
        gen, fact, dim = make_generator(seed=31)
        case = FuzzCase(tables=(fact, dim), query=gen.generate(),
                        num_batches=3, bootstrap_trials=8, seed=31)
        clone = FuzzCase.from_dict(case.to_dict())
        assert clone.sql == case.sql
        assert clone.tables == case.tables
        assert clone.num_batches == 3 and clone.bootstrap_trials == 8
