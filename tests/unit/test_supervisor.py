"""Unit coverage for the supervised worker pool (ISSUE 7 tentpole).

Each recovery rung in isolation: deadline-bounded hang escape, broken
pool rebuild with re-dispatch of only the lost shards, poison-task
quarantine with the serial fallback, merge-time result-integrity
fingerprints, and the seeded full-jitter retry pauses everything backs
off with.
"""

import time

import numpy as np
import pytest

from repro.config import FaultsConfig
from repro.engine.aggregates import AvgState, SumState
from repro.errors import ShardLostError
from repro.faults import FaultInjector, RetryPolicy
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import (
    CORRUPT_SENTINEL,
    SupervisedPool,
    WorkerPool,
    run_fold_shard,
    validate_fold_shard,
)
from repro.parallel.supervisor import corrupt_result


def square(x):
    return x * x


def poison_three(x):
    if x == 3:
        raise ValueError("task 3 is unrunnable")
    return x * x


def injector(**fields):
    cfg = FaultsConfig(enabled=True, seed=fields.pop("seed", 7), **fields)
    return FaultInjector(cfg, master_seed=cfg.seed)


def metrics_tracer():
    return Tracer(metrics=MetricsRegistry(enabled=True))


class TestSupervisedMap:
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_clean_map_is_ordered(self, backend):
        with SupervisedPool(2, backend, deadline_s=30.0) as pool:
            assert pool.map(square, range(7)) == [x * x for x in range(7)]

    def test_empty_map(self):
        with SupervisedPool(2, "thread") as pool:
            assert pool.map(square, []) == []

    def test_serial_backend_is_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            SupervisedPool(1, "serial")


class TestCrashRecovery:
    def test_process_worker_kills_are_survived(self):
        tracer = metrics_tracer()
        inj = injector(worker_kill_prob=0.4)
        with SupervisedPool(2, "process", deadline_s=30.0, retries=2,
                            injector=inj, tracer=tracer) as pool:
            assert pool.map(square, range(8)) == [x * x for x in range(8)]
            assert pool.restarts >= 1
        counters = tracer.metrics.snapshot().counters
        assert counters["parallel.restarts"] == pool.restarts
        assert counters["parallel.worker_lost"] >= 1
        assert counters["parallel.redispatched"] >= 1

    def test_thread_backend_kills_become_retried_failures(self):
        tracer = metrics_tracer()
        inj = injector(worker_kill_prob=0.4)
        with SupervisedPool(2, "thread", deadline_s=30.0, retries=4,
                            injector=inj, tracer=tracer) as pool:
            assert pool.map(square, range(8)) == [x * x for x in range(8)]
            # Threads cannot be SIGKILLed; injected deaths surface as
            # per-task failures, never as pool breakage.
            assert pool.restarts == 0
        counters = tracer.metrics.snapshot().counters
        assert counters["parallel.task_failures"] >= 1

    def test_fault_plans_are_deterministic(self):
        plans = [injector(worker_kill_prob=0.3, worker_hang_prob=0.2,
                          result_corrupt_prob=0.1).worker_faults(16)
                 for _ in range(2)]
        for key in ("kill", "hang", "corrupt"):
            np.testing.assert_array_equal(plans[0][key], plans[1][key])
        assert any(plans[0][key].any()
                   for key in ("kill", "hang", "corrupt"))


class TestHangDeadline:
    def test_hung_worker_never_stalls_past_deadline(self):
        """The acceptance pin: injected hangs sleep 30s but the map is
        bounded by the (sub-second) task deadline per dispatch round,
        not by the hang."""
        inj = injector(worker_hang_prob=0.9, worker_hang_s=30.0)
        start = time.monotonic()
        with SupervisedPool(2, "process", deadline_s=0.5, retries=2,
                            injector=inj) as pool:
            results = pool.map(square, range(4))
        elapsed = time.monotonic() - start
        assert results == [x * x for x in range(4)]
        assert elapsed < 15.0, f"stalled {elapsed:.1f}s behind a hang"

    def test_timeout_counters_and_restart(self):
        tracer = metrics_tracer()
        inj = injector(worker_hang_prob=1.0, worker_hang_s=30.0,
                       max_retries=0)
        with SupervisedPool(2, "process", deadline_s=0.3, retries=0,
                            injector=inj, tracer=tracer) as pool:
            assert pool.map(square, [1, 2]) == [1, 4]
            assert pool.restarts >= 1
        counters = tracer.metrics.snapshot().counters
        assert counters["parallel.task_timeouts"] >= 1
        assert counters["parallel.quarantined"] >= 1


class TestQuarantine:
    def test_poison_task_falls_back_to_serial(self):
        """A task whose every pool attempt dies still yields its result
        through the coordinator-side serial fallback."""
        tracer = metrics_tracer()
        inj = injector(worker_kill_prob=1.0, max_retries=1)
        with SupervisedPool(2, "thread", deadline_s=30.0, retries=1,
                            injector=inj, tracer=tracer) as pool:
            assert pool.map(square, range(4)) == [x * x for x in range(4)]
        counters = tracer.metrics.snapshot().counters
        assert counters["parallel.quarantined"] >= 1
        assert counters["parallel.serial_fallbacks"] >= 1

    def test_unrunnable_task_raises_shard_lost(self):
        with SupervisedPool(2, "thread", deadline_s=30.0,
                            retries=1) as pool:
            with pytest.raises(ShardLostError) as err:
                pool.map(poison_three, range(5))
        assert err.value.task_index == 3
        assert "serial fallback" in str(err.value)


def _fold_payload(n=12, width=4):
    rng = np.random.default_rng(5)
    return {
        "aliases": [("s", SumState), ("a", AvgState)],
        "lo": 2,
        "hi": 2 + width,
        "group_idx": rng.integers(0, 3, size=n),
        "values": {"s": rng.normal(size=n), "a": rng.normal(size=n)},
        "row_idx": None,
        "weight_spec": None,
        "weights": rng.poisson(1.0, size=(n, width)).astype(np.float64),
    }


class TestResultIntegrity:
    def test_valid_fold_result_passes(self):
        payload = _fold_payload()
        assert validate_fold_shard(payload, run_fold_shard(payload)) is None

    def test_nan_budget_rejects_corruption(self):
        payload = _fold_payload()
        result = corrupt_result(run_fold_shard(payload))
        error = validate_fold_shard(payload, result)
        assert error is not None and "NaN" in error

    def test_nan_inputs_stay_within_budget(self):
        payload = _fold_payload()
        payload["values"]["s"][0] = np.nan
        result = run_fold_shard(payload)
        assert validate_fold_shard(payload, result) is None

    def test_structural_mismatches_rejected(self):
        payload = _fold_payload()
        good = run_fold_shard(payload)
        assert validate_fold_shard(payload, CORRUPT_SENTINEL)
        assert validate_fold_shard(payload, good[:1])  # missing alias
        swapped = [(good[1][0], good[0][1]), good[1]]
        assert validate_fold_shard(payload, swapped)  # alias mismatch
        narrow = run_fold_shard({**payload, "hi": payload["lo"] + 2,
                                 "weights": payload["weights"][:, :2]})
        assert "width" in validate_fold_shard(payload, narrow)

    def test_corrupted_results_rerun_in_supervised_map(self):
        tracer = metrics_tracer()
        inj = injector(result_corrupt_prob=0.5)
        payloads = [_fold_payload() for _ in range(6)]
        expected = [run_fold_shard(p) for p in payloads]
        with SupervisedPool(2, "thread", deadline_s=30.0, retries=4,
                            injector=inj, tracer=tracer,
                            validate=validate_fold_shard) as pool:
            results = pool.map(run_fold_shard, payloads)
        for got, want in zip(results, expected):
            for (alias_g, state_g), (alias_w, state_w) in zip(got, want):
                assert alias_g == alias_w
                for name, arr in vars(state_w).items():
                    if isinstance(arr, np.ndarray):
                        np.testing.assert_array_equal(
                            vars(state_g)[name], arr
                        )
        assert tracer.metrics.snapshot().counters[
            "parallel.corrupt_results"] >= 1


class TestSeededJitter:
    def test_full_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(backoff_s=0.2, backoff_factor=2.0)
        a = policy.jitter_rng(7, "loadgen:c1")
        b = policy.jitter_rng(7, "loadgen:c1")
        seq_a = [policy.jittered_delay(i, a) for i in range(6)]
        seq_b = [policy.jittered_delay(i, b) for i in range(6)]
        assert seq_a == seq_b
        for attempt, delay in enumerate(seq_a):
            assert 0.0 <= delay <= policy.delay(attempt)

    def test_actors_are_decorrelated(self):
        policy = RetryPolicy()
        streams = [
            [policy.jittered_delay(i, policy.jitter_rng(7, actor))
             for i in range(4)]
            for actor in ("supervisor", "loadgen:c1", "loadgen:c2")
        ]
        assert len({tuple(s) for s in streams}) == len(streams)


class TestPoolDegradation:
    def test_forced_degradation_warns_and_counts(self, monkeypatch,
                                                 caplog):
        """Process-pool-unavailable fallback must be loud: a warning and
        a ``parallel.degraded`` bump, never a silent backend swap."""
        import repro.parallel.pool as pool_mod

        def unavailable(*args, **kwargs):
            raise PermissionError("fork blocked by sandbox")

        monkeypatch.setattr(pool_mod, "ProcessPoolExecutor", unavailable)
        metrics = MetricsRegistry(enabled=True)
        with caplog.at_level("WARNING", logger="repro.parallel"):
            pool = WorkerPool(2, backend="process", metrics=metrics)
            assert pool.map(square, [1, 2, 3]) == [1, 4, 9]
        assert pool.backend == "thread"
        assert any("degrading" in rec.message for rec in caplog.records)
        assert metrics.snapshot().counters["parallel.degraded"] == 1
        pool.close()
