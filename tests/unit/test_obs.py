"""Unit tests for the observability layer (repro.obs)."""

import io
import json

from repro.config import GolaConfig
from repro.obs import (
    NULL_TRACER,
    AggregatingSink,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    TeeSink,
    Tracer,
    TraceSink,
    build_profile,
    get_tracer,
    load_events,
    render_profile,
    set_tracer,
    tracer_from_config,
)
from repro.core.result import format_rsd


class ListSink(TraceSink):
    """Collects raw records for structural assertions."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


class TestTracer:
    def test_span_hierarchy(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("query") as q:
            with tracer.span("batch", batch_index=1):
                with tracer.span("block", block="main") as bl:
                    bl.set("rows_processed", 42)
            tracer.event("checkpoint", batch=1)
        spans = {r["name"]: r for r in sink.records if r["type"] == "span"}
        # Innermost exits first; parent links reconstruct the tree.
        assert spans["block"]["parent"] == spans["batch"]["id"]
        assert spans["batch"]["parent"] == spans["query"]["id"]
        assert spans["query"]["parent"] is None
        assert spans["block"]["attrs"]["rows_processed"] == 42
        assert q.elapsed_s >= spans["batch"]["elapsed_s"] >= 0.0
        event = next(r for r in sink.records if r["type"] == "event")
        assert event["parent"] == spans["query"]["id"]

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(NullSink())
        assert not tracer.enabled
        span_a = tracer.span("query")
        span_b = tracer.span("batch", rows_in=10)
        # One shared null span: no allocation per record site.
        assert span_a is span_b
        with span_a as s:
            s.set("rows", 1)  # silently ignored
        tracer.event("never")
        assert not tracer.metrics.enabled

    def test_record_span_simulated_clock(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.record_span("batch", 12.5, clock="simulated",
                           batch_index=3, rows_in=100)
        [record] = sink.records
        assert record["clock"] == "simulated"
        assert record["elapsed_s"] == 12.5
        assert record["attrs"]["batch_index"] == 3

    def test_default_tracer_install(self):
        assert get_tracer() is NULL_TRACER
        custom = Tracer(AggregatingSink())
        try:
            assert set_tracer(custom) is custom
            assert get_tracer() is custom
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_tracer_from_config(self):
        assert not tracer_from_config(GolaConfig()).enabled
        traced = tracer_from_config(GolaConfig(trace=True))
        assert traced.enabled and traced.metrics.enabled
        assert isinstance(traced.sink, AggregatingSink)
        metrics_only = tracer_from_config(GolaConfig(metrics=True))
        assert not metrics_only.enabled and metrics_only.metrics.enabled

    def test_tracer_from_config_trace_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = tracer_from_config(GolaConfig(trace_path=str(path)))
        with tracer.span("query"):
            pass
        tracer.close()
        assert len(load_events(str(path))) == 1
        # The tee also aggregates in memory.
        assert any(isinstance(s, AggregatingSink) for s in tracer.sink.sinks)


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(str(path)))
        with tracer.span("batch", batch_index=1, rows_in=7):
            pass
        tracer.close()
        [record] = load_events(str(path))
        assert record["name"] == "batch"
        assert record["attrs"] == {"batch_index": 1, "rows_in": 7}

    def test_jsonl_borrowed_file(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"type": "event", "name": "x", "attrs": {}})
        sink.close()  # borrowed: flushed, not closed
        assert json.loads(buf.getvalue())["name"] == "x"

    def test_aggregating_sink(self):
        sink = AggregatingSink()
        tracer = Tracer(sink)
        for i in range(3):
            with tracer.span("batch", rows_in=10 * (i + 1), engine="gola",
                             rebuilt=True):
                pass
        tracer.event("guard_violation")
        stats = sink.spans["batch"]
        assert stats.count == 3
        assert stats.attr_totals["rows_in"] == 60
        # Strings and bools never pollute the numeric totals.
        assert "engine" not in stats.attr_totals
        assert "rebuilt" not in stats.attr_totals
        assert stats.min_s <= stats.mean_s <= stats.max_s
        assert sink.events == {"guard_violation": 1}
        assert sink.total_seconds("batch") == stats.total_s
        assert sink.total_seconds("missing") == 0.0
        assert "batch" in sink.render()

    def test_tee_sink(self, tmp_path):
        agg = AggregatingSink()
        path = tmp_path / "tee.jsonl"
        tee = TeeSink(agg, JsonlSink(str(path)))
        tracer = Tracer(tee)
        with tracer.span("query"):
            pass
        tracer.close()
        assert agg.spans["query"].count == 1
        assert len(load_events(str(path))) == 1

    def test_tee_drops_disabled_children(self):
        tee = TeeSink(NullSink(), NullSink())
        assert not tee.enabled
        assert TeeSink(AggregatingSink(), NullSink()).enabled


class TestMetrics:
    def test_instruments(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("rows").inc(5)
        reg.counter("rows").inc()
        reg.gauge("uncertain").set(17)
        for v in (1.0, 3.0):
            reg.histogram("seconds").observe(v)
        snap = reg.snapshot()
        assert snap.counters["rows"] == 6
        assert snap.gauges["uncertain"] == 17.0
        hist = snap.histograms["seconds"]
        assert hist.count == 2 and hist.mean == 2.0
        assert hist.min == 1.0 and hist.max == 3.0
        text = snap.describe()
        assert "rows" in text and "uncertain" in text and "seconds" in text

    def test_snapshot_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("rows").inc(10)
        b.counter("rows").inc(4)
        b.counter("only_b").inc()
        a.gauge("level").set(1)
        b.gauge("level").set(2)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters == {"rows": 14, "only_b": 1}
        assert merged.gauges["level"] == 2.0  # last write wins
        assert merged.histograms["h"].count == 2
        assert merged.histograms["h"].min == 1.0
        assert merged.histograms["h"].max == 5.0

    def test_histogram_stdev(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            h.observe(v)
        assert abs(h.stdev - 2.0) < 1e-12

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot().counters == {}


class TestReport:
    def test_build_and_render_profile(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(str(path)))
        with tracer.span("query"):
            for i in (1, 2):
                with tracer.span("batch", batch_index=i, rows_in=50,
                                 rows_processed=60, rebuilds=i - 1):
                    with tracer.span("op:Scan", rows_in=50, rows_out=50):
                        pass
        tracer.record_span("batch", 30.0, clock="simulated",
                           batch_index=1, rows_in=50)
        tracer.event("guard_violation")
        tracer.close()

        report = build_profile(load_events(str(path)))
        assert report.span_stats("batch").count == 2
        assert report.span_stats("batch", clock="simulated").total_s == 30.0
        assert report.span_stats("missing") is None
        # Wall and simulated batch spans both land in `batches`, ordered.
        assert [b["batch_index"] for b in report.batches] == [1, 1, 2]
        assert report.events == {"guard_violation": 1}

        text = render_profile(report)
        assert "per-phase profile" in text
        assert "simulated-clock profile" in text
        assert "per-operator profile" in text
        assert "op:Scan" in text
        assert "guard_violation=1" in text

    def test_format_rsd(self):
        assert format_rsd(float("nan")) == "n/a"
        assert format_rsd(0.0123) == "1.230%"
        assert format_rsd(0.0123, digits=1) == "1.2%"
