"""Unit tests for interval arithmetic and three-valued classification."""

import numpy as np
import pytest

from repro.core import (
    IntervalEnv,
    KeyedSlotState,
    ScalarSlotState,
    SetSlotState,
    TRI_FALSE,
    TRI_TRUE,
    TRI_UNKNOWN,
    classify,
    interval_eval,
    tri_eval,
)
from repro.engine.aggregates import GroupIndex
from repro.estimate import VariationRange
from repro.expr.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Environment,
    FunctionCall,
    InSubquery,
    Literal,
    Negate,
    SubqueryRef,
)
from repro.storage import Table


@pytest.fixture
def table():
    return Table.from_columns(
        {
            "x": np.array([1.0, 5.0, 9.0, 13.0]),
            "k": np.array([1, 1, 2, 3], dtype=np.int64),
        }
    )


def scalar_env(low, high, estimate=None, slot=0):
    est = (low + high) / 2 if estimate is None else estimate
    state = ScalarSlotState(
        slot=slot, estimate=est,
        replicas=np.array([low, high]),
        vrange=VariationRange(low, high),
    )
    return IntervalEnv(slots={slot: state}, point=Environment(
        scalars={slot: est}
    ))


class TestIntervalEval:
    def test_certain_expression_degenerate(self, table):
        low, high = interval_eval(ColumnRef("x"), table, IntervalEnv())
        np.testing.assert_array_equal(low, high)

    def test_scalar_slot_interval(self, table):
        env = scalar_env(4.0, 6.0)
        low, high = interval_eval(SubqueryRef(0), table, env)
        assert low[0] == 4.0 and high[0] == 6.0

    def test_addition(self, table):
        env = scalar_env(4.0, 6.0)
        expr = BinaryOp("+", ColumnRef("x"), SubqueryRef(0))
        low, high = interval_eval(expr, table, env)
        np.testing.assert_array_equal(low, table["x"] + 4.0)
        np.testing.assert_array_equal(high, table["x"] + 6.0)

    def test_subtraction_flips(self, table):
        env = scalar_env(4.0, 6.0)
        expr = BinaryOp("-", ColumnRef("x"), SubqueryRef(0))
        low, high = interval_eval(expr, table, env)
        np.testing.assert_array_equal(low, table["x"] - 6.0)
        np.testing.assert_array_equal(high, table["x"] - 4.0)

    def test_multiplication_sign_handling(self, table):
        env = scalar_env(-2.0, 3.0)
        expr = BinaryOp("*", Literal(-1.0), SubqueryRef(0))
        low, high = interval_eval(expr, table, env)
        assert low[0] == -3.0 and high[0] == 2.0

    def test_division_through_zero_is_conservative(self, table):
        env = scalar_env(-1.0, 1.0)
        expr = BinaryOp("/", Literal(1.0), SubqueryRef(0))
        low, high = interval_eval(expr, table, env)
        assert low[0] == -np.inf and high[0] == np.inf

    def test_division_safe(self, table):
        env = scalar_env(2.0, 4.0)
        expr = BinaryOp("/", Literal(8.0), SubqueryRef(0))
        low, high = interval_eval(expr, table, env)
        assert low[0] == 2.0 and high[0] == 4.0

    def test_negate(self, table):
        env = scalar_env(4.0, 6.0)
        low, high = interval_eval(Negate(SubqueryRef(0)), table, env)
        assert low[0] == -6.0 and high[0] == -4.0

    def test_monotone_function(self, table):
        env = scalar_env(4.0, 9.0)
        expr = FunctionCall("sqrt", [SubqueryRef(0)])
        low, high = interval_eval(expr, table, env)
        assert low[0] == 2.0 and high[0] == 3.0

    def test_unknown_function_conservative(self, table):
        env = scalar_env(4.0, 9.0)
        expr = FunctionCall("round", [SubqueryRef(0)])
        low, high = interval_eval(expr, table, env)
        assert low[0] == -np.inf and high[0] == np.inf

    def test_keyed_slot_lookup(self, table):
        index = GroupIndex()
        index.encode(np.array([1, 2]))
        state = KeyedSlotState(
            slot=0, index=index,
            estimates=np.array([5.0, 50.0]),
            replicas=np.array([[4.0, 6.0], [45.0, 55.0]]),
            lows=np.array([4.0, 45.0]),
            highs=np.array([6.0, 55.0]),
        )
        env = IntervalEnv(slots={0: state})
        ref = SubqueryRef(0, correlation=ColumnRef("k"))
        low, high = interval_eval(ref, table, env)
        # Key 3 is unseen: fully uncertain.
        assert low[3] == -np.inf and high[3] == np.inf
        assert low[0] == 4.0 and high[2] == 55.0

    def test_keyed_zero_presence_uncertain(self, table):
        index = GroupIndex()
        index.encode(np.array([1]))
        state = KeyedSlotState(
            slot=0, index=index,
            estimates=np.array([0.0]),
            replicas=np.zeros((1, 2)),
            lows=np.array([0.0]), highs=np.array([0.0]),
            present=np.array([False]),
        )
        env = IntervalEnv(slots={0: state})
        ref = SubqueryRef(0, correlation=ColumnRef("k"))
        low, high = interval_eval(ref, table, env)
        assert low[0] == -np.inf and high[0] == np.inf


class TestTriEval:
    def test_certain_predicate_is_definite(self, table):
        tri = tri_eval(
            Comparison(">", ColumnRef("x"), Literal(5.0)), table,
            IntervalEnv(),
        )
        assert tri.tolist() == [TRI_FALSE, TRI_FALSE, TRI_TRUE, TRI_TRUE]

    def test_threshold_classification(self, table):
        # x in {1,5,9,13}; uncertain threshold in [4, 6].
        env = scalar_env(4.0, 6.0)
        tri = tri_eval(
            Comparison(">", ColumnRef("x"), SubqueryRef(0)), table, env
        )
        assert tri.tolist() == [TRI_FALSE, TRI_UNKNOWN, TRI_TRUE, TRI_TRUE]

    def test_lt_lte_edges(self, table):
        env = scalar_env(5.0, 5.0)  # degenerate at exactly 5
        lt = tri_eval(Comparison("<", ColumnRef("x"), SubqueryRef(0)),
                      table, env)
        lte = tri_eval(Comparison("<=", ColumnRef("x"), SubqueryRef(0)),
                       table, env)
        assert lt.tolist() == [TRI_TRUE, TRI_FALSE, TRI_FALSE, TRI_FALSE]
        assert lte.tolist() == [TRI_TRUE, TRI_TRUE, TRI_FALSE, TRI_FALSE]

    def test_equality(self, table):
        env = scalar_env(5.0, 5.0)
        eq = tri_eval(Comparison("=", ColumnRef("x"), SubqueryRef(0)),
                      table, env)
        assert eq.tolist() == [TRI_FALSE, TRI_TRUE, TRI_FALSE, TRI_FALSE]
        wide = scalar_env(4.0, 6.0)
        eq2 = tri_eval(Comparison("=", ColumnRef("x"), SubqueryRef(0)),
                       table, wide)
        assert eq2.tolist() == [TRI_FALSE, TRI_UNKNOWN, TRI_FALSE, TRI_FALSE]

    def test_kleene_not(self, table):
        env = scalar_env(4.0, 6.0)
        inner = Comparison(">", ColumnRef("x"), SubqueryRef(0))
        tri = tri_eval(BooleanOp("NOT", [inner]), table, env)
        assert tri.tolist() == [TRI_TRUE, TRI_UNKNOWN, TRI_FALSE, TRI_FALSE]

    def test_kleene_and_or(self, table):
        env = scalar_env(4.0, 6.0)
        uncertain = Comparison(">", ColumnRef("x"), SubqueryRef(0))
        always = Comparison(">", ColumnRef("x"), Literal(0.0))
        never = Comparison("<", ColumnRef("x"), Literal(0.0))
        tri_and = tri_eval(BooleanOp("AND", [uncertain, always]), table, env)
        assert tri_and.tolist() == \
            [TRI_FALSE, TRI_UNKNOWN, TRI_TRUE, TRI_TRUE]
        # OR with an always-true side resolves UNKNOWN to TRUE.
        tri_or = tri_eval(BooleanOp("OR", [uncertain, always]), table, env)
        assert tri_or.tolist() == [TRI_TRUE] * 4
        # AND with an always-false side resolves UNKNOWN to FALSE.
        tri_and2 = tri_eval(BooleanOp("AND", [uncertain, never]), table, env)
        assert tri_and2.tolist() == [TRI_FALSE] * 4

    def test_in_subquery_membership(self, table):
        state = SetSlotState(
            slot=0,
            point_members={1},
            tri_status={1: int(TRI_TRUE), 2: int(TRI_FALSE)},
        )
        env = IntervalEnv(slots={0: state})
        tri = tri_eval(InSubquery(ColumnRef("k"), 0), table, env)
        assert tri.tolist() == [TRI_TRUE, TRI_TRUE, TRI_FALSE, TRI_UNKNOWN]
        negated = tri_eval(
            InSubquery(ColumnRef("k"), 0, negated=True), table, env
        )
        assert negated.tolist() == \
            [TRI_FALSE, TRI_FALSE, TRI_TRUE, TRI_UNKNOWN]

    def test_static_set_closed_default(self, table):
        state = SetSlotState(
            slot=0, point_members={1}, tri_status={1: int(TRI_TRUE)},
            default_status=TRI_FALSE,
        )
        env = IntervalEnv(slots={0: state})
        tri = tri_eval(InSubquery(ColumnRef("k"), 0), table, env)
        assert tri.tolist() == [TRI_TRUE, TRI_TRUE, TRI_FALSE, TRI_FALSE]


class TestClassify:
    def test_conjunction(self, table):
        env = scalar_env(4.0, 6.0)
        uncertain = Comparison(">", ColumnRef("x"), SubqueryRef(0))
        certain = Comparison("<", ColumnRef("x"), Literal(10.0))
        tri = classify([uncertain, certain], table, env)
        assert tri.tolist() == \
            [TRI_FALSE, TRI_UNKNOWN, TRI_TRUE, TRI_FALSE]

    def test_empty_table(self):
        empty = Table.from_columns({"x": np.array([])})
        tri = classify([Comparison(">", ColumnRef("x"), Literal(0))],
                       empty, IntervalEnv())
        assert tri.shape == (0,)

    def test_point_decision_consistent_with_tri(self, table):
        """Soundness: deterministic tri values match point evaluation."""
        env = scalar_env(4.0, 6.0, estimate=5.0)
        pred = Comparison(">", ColumnRef("x"), SubqueryRef(0))
        tri = tri_eval(pred, table, env)
        point = pred.evaluate(table, env.point)
        for t, p in zip(tri, point):
            if t == TRI_TRUE:
                assert p
            elif t == TRI_FALSE:
                assert not p
