"""Unit tests for the batch, classical-OLA and CDM baselines."""

import numpy as np
import pytest

from repro import GolaConfig, UnsupportedQueryError
from repro.baselines import (
    BatchBaseline,
    ClassicalDeltaMaintenance,
    ClassicalOLA,
)
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table


@pytest.fixture
def fact():
    rng = np.random.default_rng(8)
    n = 3000
    return Table.from_columns(
        {
            "g": np.array(["g%d" % v for v in rng.integers(0, 4, n)],
                          dtype=object),
            "x": rng.normal(20, 5, n),
            "y": rng.exponential(2, n),
        }
    )


def bind(sql, fact):
    cat = Catalog()
    cat.register("fact", fact, streamed=True)
    return bind_statement(parse_sql(sql), cat)


class TestBatchBaseline:
    def test_exact_answer_and_rows(self, fact):
        query = bind("SELECT AVG(x) AS m FROM fact", fact)
        result = BatchBaseline({"fact": fact}).run(query)
        assert result.table.to_pylist()[0]["m"] == pytest.approx(
            fact["x"].mean()
        )
        assert result.rows_processed == 3000
        assert result.elapsed_s >= 0.0


class TestClassicalOLA:
    def test_rejects_nested_aggregates(self, fact):
        query = bind(
            "SELECT AVG(x) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        with pytest.raises(UnsupportedQueryError, match="SPJA"):
            ClassicalOLA(query, {"fact": fact},
                         GolaConfig(num_batches=4, bootstrap_trials=8))

    def test_rejects_unsupported_aggregate(self, fact):
        query = bind("SELECT MIN(x) FROM fact", fact)
        with pytest.raises(UnsupportedQueryError, match="closed-form"):
            ClassicalOLA(query, {"fact": fact},
                         GolaConfig(num_batches=4, bootstrap_trials=8))

    def test_rejects_having(self, fact):
        query = bind(
            "SELECT g, SUM(x) FROM fact GROUP BY g HAVING SUM(x) > 1",
            fact,
        )
        with pytest.raises(UnsupportedQueryError, match="HAVING"):
            ClassicalOLA(query, {"fact": fact},
                         GolaConfig(num_batches=4, bootstrap_trials=8))

    def test_running_mean_converges(self, fact):
        query = bind("SELECT AVG(x) AS m FROM fact WHERE y < 3", fact)
        ola = ClassicalOLA(query, {"fact": fact},
                           GolaConfig(num_batches=5, bootstrap_trials=8,
                                      seed=4))
        snaps = list(ola.run())
        assert len(snaps) == 5
        truth = fact["x"][fact["y"] < 3].mean()
        est, low, high = snaps[-1].scalar()
        assert est == pytest.approx(truth, rel=1e-9)
        widths = [s.scalar()[2] - s.scalar()[1] for s in snaps]
        assert widths[-1] < widths[0]  # intervals tighten

    def test_sum_and_count_scale_to_population(self, fact):
        query = bind("SELECT SUM(x) AS s, COUNT(*) AS n FROM fact", fact)
        ola = ClassicalOLA(query, {"fact": fact},
                           GolaConfig(num_batches=4, bootstrap_trials=8,
                                      seed=4))
        first = next(iter(ola.run()))
        # After one of four batches the scaled estimates target the
        # full-population values.
        assert first.estimates["s"][0] == pytest.approx(
            fact["x"].sum(), rel=0.1
        )
        assert first.estimates["n"][0] == pytest.approx(3000, rel=1e-9)

    def test_interval_covers_truth(self, fact):
        query = bind("SELECT AVG(x) AS m FROM fact", fact)
        ola = ClassicalOLA(query, {"fact": fact},
                           GolaConfig(num_batches=10, bootstrap_trials=8,
                                      seed=4))
        truth = fact["x"].mean()
        hits = sum(
            1 for s in ola.run()
            if s.scalar()[1] <= truth <= s.scalar()[2]
        )
        assert hits >= 8  # ~95% nominal coverage, 10 correlated checks


class TestCDM:
    def test_prefix_answers_match_gola_semantics(self, fact):
        sql = ("SELECT AVG(y) AS m FROM fact WHERE x > "
               "(SELECT AVG(x) FROM fact)")
        query = bind(sql, fact)
        config = GolaConfig(num_batches=4, bootstrap_trials=8, seed=3)
        cdm = ClassicalDeltaMaintenance(query, {"fact": fact}, config)
        snaps = list(cdm.run())
        assert len(snaps) == 4
        # Final iteration is the exact answer.
        inner = fact["x"].mean()
        truth = fact["y"][fact["x"] > inner].mean()
        assert snaps[-1].table.to_pylist()[0]["m"] == pytest.approx(
            truth, rel=1e-9
        )

    def test_rows_grow_linearly(self, fact):
        sql = ("SELECT AVG(y) AS m FROM fact WHERE x > "
               "(SELECT AVG(x) FROM fact)")
        query = bind(sql, fact)
        config = GolaConfig(num_batches=4, bootstrap_trials=8, seed=3)
        cdm = ClassicalDeltaMaintenance(query, {"fact": fact}, config)
        rows = [s.rows_processed["main"] for s in cdm.run()]
        assert rows == sorted(rows)
        assert rows[-1] == 3000  # full prefix at the last batch
        # Inner aggregate maintained incrementally.
        inner_rows = [
            s.rows_processed["sub#0"]
            for s in ClassicalDeltaMaintenance(
                query, {"fact": fact}, config
            ).run()
        ]
        assert max(inner_rows) <= 751

    def test_matches_gola_estimates_per_batch(self, fact):
        """CDM and G-OLA compute the same Q(D_i, k/i) series."""
        from repro import GolaSession

        sql = ("SELECT AVG(y) AS m FROM fact WHERE x > "
               "(SELECT AVG(x) FROM fact)")
        config = GolaConfig(num_batches=4, bootstrap_trials=8, seed=3)
        session = GolaSession(config)
        session.register_table("fact", fact)
        gola_series = [
            s.estimate for s in session.sql(sql).run_online()
        ]
        query = bind(sql, fact)
        cdm_series = [
            s.table.to_pylist()[0]["m"]
            for s in ClassicalDeltaMaintenance(
                query, {"fact": fact}, config
            ).run()
        ]
        np.testing.assert_allclose(gola_series, cdm_series, rtol=1e-9)
