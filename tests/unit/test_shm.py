"""Unit coverage for ``repro.parallel.shm``.

The contract under test: the coordinator publishes a batch's arrays
once into one shared segment, workers resolve tiny specs into read-only
zero-copy views, and the refcount/close protocol guarantees no segment
ever outlives its run — whatever the failure path.
"""

import pickle

import numpy as np
import pytest

from repro.parallel.shm import (
    _ALIGN,
    HAVE_SHM,
    ArraySpec,
    ShmRegistry,
    attached_segments,
    cached_group_count,
    detach_all,
    resolve,
    segment_exists,
)

pytestmark = pytest.mark.skipif(
    not HAVE_SHM, reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture(autouse=True)
def _clean_attachments():
    """Drop this process's attach/memo caches after every test."""
    yield
    detach_all()


def _sample_arrays():
    rng = np.random.default_rng(0)
    return {
        "group_idx": rng.integers(0, 9, 1000),
        "value:x": rng.normal(size=1000),
        "row_idx": np.arange(0, 1000, 3, dtype=np.int64),
    }


class TestPublishResolve:
    def test_roundtrip_is_bit_identical(self):
        arrays = _sample_arrays()
        with ShmRegistry() as registry:
            lease = registry.publish(arrays)
            assert lease is not None
            assert set(lease.specs) == set(arrays)
            for name, arr in arrays.items():
                view = resolve(lease.specs[name])
                assert view.dtype == arr.dtype
                assert np.array_equal(view, arr)
            lease.release()

    def test_views_are_read_only(self):
        with ShmRegistry() as registry:
            lease = registry.publish({"x": np.ones(16)})
            view = resolve(lease.specs["x"])
            with pytest.raises(ValueError):
                view[0] = 2.0
            lease.release()

    def test_arrays_share_one_aligned_segment(self):
        arrays = _sample_arrays()
        with ShmRegistry() as registry:
            lease = registry.publish(arrays)
            specs = list(lease.specs.values())
            assert len({s.segment for s in specs}) == 1
            assert all(s.offset % _ALIGN == 0 for s in specs)
            # packed back to back: no two arrays overlap
            spans = sorted((s.offset, s.offset + s.nbytes) for s in specs)
            for (_, a_hi), (b_lo, _) in zip(spans, spans[1:]):
                assert a_hi <= b_lo
            lease.release()

    def test_attach_cache_reuses_the_segment(self):
        with ShmRegistry() as registry:
            lease = registry.publish(_sample_arrays())
            for spec in lease.specs.values():
                resolve(spec)
            assert attached_segments() == [lease.segment]
            lease.release()

    def test_resolve_passes_non_specs_through(self):
        arr = np.arange(4.0)
        assert resolve(arr) is arr
        assert resolve(None) is None

    def test_spec_is_pickle_small(self):
        with ShmRegistry() as registry:
            lease = registry.publish(
                {"w": np.zeros((50_000, 96))}  # ~38 MB array
            )
            spec = lease.specs["w"]
            payload = pickle.dumps(spec)
            assert len(payload) < 200  # specs ship, bytes don't
            assert pickle.loads(payload) == spec
            lease.release()

    def test_empty_publish_returns_none(self):
        with ShmRegistry() as registry:
            assert registry.publish({}) is None
            assert registry.publish({"x": np.empty(0)}) is None
            assert registry.created == []


class TestLifecycle:
    def test_release_unlinks_at_refcount_zero(self):
        registry = ShmRegistry()
        lease = registry.publish({"x": np.ones(32)})
        name = lease.segment
        assert registry.live_segments() == [name]
        assert segment_exists(name)
        lease.release()
        assert registry.live_segments() == []
        assert not segment_exists(name)
        assert registry.created == [name]  # probing names survive unlink

    def test_release_is_idempotent_against_retain(self):
        registry = ShmRegistry()
        lease = registry.publish({"x": np.ones(32)})
        registry.retain(lease.segment)
        lease.release()
        lease.release()  # second release must not double-decrement
        assert segment_exists(lease.segment)
        registry.close()
        assert not segment_exists(lease.segment)

    def test_close_force_unlinks_everything(self):
        registry = ShmRegistry()
        names = [
            registry.publish({"x": np.ones(8 * (i + 1))}).segment
            for i in range(3)
        ]
        registry.close()
        assert registry.live_segments() == []
        assert not any(segment_exists(n) for n in names)
        registry.close()  # idempotent

    def test_dropped_registry_finalizer_unlinks(self):
        registry = ShmRegistry()
        name = registry.publish({"x": np.ones(8)}).segment
        assert segment_exists(name)
        registry._finalizer()  # what gc would run on a leaked registry
        assert not segment_exists(name)

    def test_failed_creation_degrades_permanently(self, monkeypatch):
        from repro.parallel import shm as shm_mod

        registry = ShmRegistry()

        class Exploding:
            def SharedMemory(self, *a, **k):
                raise OSError("no /dev/shm")

        monkeypatch.setattr(shm_mod, "_shared_memory", Exploding())
        assert registry.publish({"x": np.ones(8)}) is None
        monkeypatch.undo()
        # degradation sticks even once shared memory "works" again:
        # publishing is an optimization, flapping is not.
        assert not registry.available
        assert registry.publish({"x": np.ones(8)}) is None

    def test_segment_exists_probe(self):
        assert not segment_exists("repro-never-created")


class TestGroupCountMemo:
    def test_memoized_per_segment_offset(self):
        with ShmRegistry() as registry:
            lease = registry.publish(
                {"group_idx": np.array([0, 3, 1], dtype=np.int64)}
            )
            spec = lease.specs["group_idx"]
            assert cached_group_count(spec, resolve(spec)) == 4
            # served from the memo now: a different array for the same
            # spec cannot change the answer
            assert cached_group_count(
                spec, np.array([9, 9], dtype=np.int64)
            ) == 4
            lease.release()

    def test_non_spec_inputs_recompute(self):
        arr = np.array([2, 5], dtype=np.int64)
        assert cached_group_count(None, arr) == 6
        assert cached_group_count(None, arr[:1]) == 3
        assert cached_group_count(None, np.empty(0, dtype=np.int64)) == 0
