"""Unit tests for bootstrap, intervals, closed forms and variation ranges."""

import numpy as np
import pytest

from repro.estimate import (
    ConfidenceInterval,
    PoissonWeightSource,
    VariationRange,
    count_interval,
    derive_rng,
    derive_seed,
    mean_interval,
    multinomial_bootstrap,
    normal_quantile,
    percentile_interval,
    percentile_intervals,
    poissonized_bootstrap,
    range_from_replicas,
    ranges_from_replica_matrix,
    relative_stdev,
    relative_stdevs,
    sum_interval,
    z_value,
)


class TestRandomSource:
    def test_same_label_same_seed(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_different_labels_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_rngs_reproducible(self):
        a = derive_rng(5, "x").normal(size=3)
        b = derive_rng(5, "x").normal(size=3)
        np.testing.assert_array_equal(a, b)


class TestPoissonWeights:
    def test_shape_and_mean(self):
        source = PoissonWeightSource(50, master_seed=1)
        w = source.weights_for(4000)
        assert w.shape == (4000, 50)
        assert w.mean() == pytest.approx(1.0, abs=0.05)

    def test_sequential_draws_differ(self):
        source = PoissonWeightSource(10, master_seed=1)
        a = source.weights_for(10)
        b = source.weights_for(10)
        assert not np.array_equal(a, b)

    def test_reproducible_stream(self):
        a = PoissonWeightSource(10, master_seed=2).weights_for(20)
        b = PoissonWeightSource(10, master_seed=2).weights_for(20)
        np.testing.assert_array_equal(a, b)

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            PoissonWeightSource(0, master_seed=1)


class TestBootstrapAgreement:
    def test_multinomial_vs_poissonized_mean_std(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(5, 2000)
        multi = multinomial_bootstrap(values, np.mean, 300, seed=1)
        def weighted_mean(v, w):
            return float(np.sum(v * w) / max(np.sum(w), 1.0))
        poisson = poissonized_bootstrap(values, weighted_mean, 300, seed=2)
        # Same sampling distribution up to Monte-Carlo noise.
        assert multi.std() == pytest.approx(poisson.std(), rel=0.25)
        assert multi.mean() == pytest.approx(poisson.mean(), rel=0.02)

    def test_bootstrap_std_matches_clt(self):
        rng = np.random.default_rng(4)
        values = rng.normal(10, 2, 5000)
        reps = multinomial_bootstrap(values, np.mean, 200, seed=5)
        clt_se = values.std(ddof=1) / np.sqrt(len(values))
        assert reps.std() == pytest.approx(clt_se, rel=0.3)


class TestIntervals:
    def test_percentile_interval_contains_bulk(self):
        reps = np.random.default_rng(0).normal(10, 1, 1000)
        ci = percentile_interval(reps, 0.95)
        inside = ((reps >= ci.low) & (reps <= ci.high)).mean()
        assert inside == pytest.approx(0.95, abs=0.02)
        assert ci.contains(10.0)

    def test_percentile_intervals_rowwise(self):
        matrix = np.stack([np.arange(100.0), np.arange(100.0) + 50])
        lows, highs = percentile_intervals(matrix, 0.9)
        assert lows[1] - lows[0] == pytest.approx(50.0)

    def test_relative_stdev(self):
        assert relative_stdev(10.0, np.array([9.0, 11.0])) == \
            pytest.approx(0.1)
        assert relative_stdev(0.0, np.array([0.0, 0.0])) == 0.0
        assert relative_stdev(0.0, np.array([1.0, -1.0])) == np.inf

    def test_relative_stdevs_vector(self):
        out = relative_stdevs(
            np.array([10.0, 0.0]),
            np.array([[9.0, 11.0], [0.0, 0.0]]),
        )
        assert out[0] == pytest.approx(0.1) and out[1] == 0.0

    def test_interval_str(self):
        text = str(ConfidenceInterval(1.0, 2.0, 0.95))
        assert "95%" in text


class TestClosedForm:
    def test_normal_quantile_accuracy(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.001) == pytest.approx(-3.09023, abs=1e-4)

    def test_z_value_table_and_computed(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_value(0.8) == pytest.approx(1.281552, abs=1e-4)

    def test_mean_interval_covers_truth(self):
        rng = np.random.default_rng(6)
        hits = 0
        for trial in range(200):
            sample = rng.normal(50, 10, 400)
            if mean_interval(sample, 0.95).contains(50.0):
                hits += 1
        assert 0.90 <= hits / 200 <= 0.99

    def test_sum_interval_scales(self):
        sample = np.ones(100)
        ci = sum_interval(sample, population_size=1000)
        assert ci.low == pytest.approx(1000.0) and ci.width == \
            pytest.approx(0.0)

    def test_count_interval(self):
        mask = np.array([1, 0, 1, 0] * 50)
        ci = count_interval(mask, population_size=2000)
        assert ci.contains(1000.0)

    def test_quantile_domain(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)


class TestVariationRanges:
    def test_degenerate(self):
        r = VariationRange.degenerate(5.0)
        assert r.contains(5.0) and r.width == 0.0

    def test_contains_all(self):
        r = VariationRange(0.0, 10.0)
        assert r.contains_all(np.array([0.0, 5.0, 10.0]))
        assert not r.contains_all(np.array([5.0, 11.0]))
        assert r.contains_all(np.array([]))

    def test_overlap(self):
        assert VariationRange(0, 5).overlaps(VariationRange(5, 10))
        assert not VariationRange(0, 4).overlaps(VariationRange(5, 10))

    def test_intersect(self):
        out = VariationRange(0, 6).intersect(VariationRange(4, 10))
        assert (out.low, out.high) == (4, 6)

    def test_disjoint_intersection_collapses(self):
        out = VariationRange(0, 1).intersect(VariationRange(5, 6))
        assert out.width == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            VariationRange(2.0, 1.0)

    def test_range_from_replicas_covers(self):
        reps = np.array([9.0, 10.0, 11.0])
        r = range_from_replicas(10.0, reps, epsilon_multiplier=1.0)
        assert r.contains_all(reps) and r.contains(10.0)
        eps = reps.std()
        assert r.low == pytest.approx(9.0 - eps)
        assert r.high == pytest.approx(11.0 + eps)

    def test_epsilon_zero_is_minmax(self):
        reps = np.array([1.0, 3.0])
        r = range_from_replicas(2.0, reps, epsilon_multiplier=0.0)
        assert (r.low, r.high) == (1.0, 3.0)

    def test_estimate_outside_replicas_still_covered(self):
        r = range_from_replicas(100.0, np.array([1.0, 2.0]), 0.0)
        assert r.contains(100.0)

    def test_matrix_ranges(self):
        est = np.array([10.0, 20.0])
        matrix = np.array([[9.0, 11.0], [18.0, 22.0]])
        lows, highs = ranges_from_replica_matrix(est, matrix, 1.0)
        assert lows[0] < 9.0 and highs[1] > 22.0
        assert len(lows) == 2
