"""Unit tests for sparkline history rendering."""

import numpy as np

from repro.core.result import ColumnErrors, OnlineSnapshot
from repro.frontends import render_history, sparkline
from repro.storage import Table


def snapshot(value, rel, i, k=4):
    table = Table.from_columns({"v": np.array([value])})
    return OnlineSnapshot(
        batch_index=i, num_batches=k, table=table,
        errors={"v": ColumnErrors(
            lows=np.array([value - 1]), highs=np.array([value + 1]),
            rel_stdev=np.array([rel]),
        )},
        uncertain_sizes={}, rows_processed={}, rebuilds=[],
        elapsed_s=0.0, confidence=0.95,
    )


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_rises(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 4

    def test_width_truncates_to_tail(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_extremes_map_to_ends(self):
        line = sparkline([0, 100, 0])
        assert line == "▁█▁"


class TestRenderHistory:
    def test_scalar_history(self):
        snaps = [snapshot(10 + i, 0.1 / (i + 1), i + 1) for i in range(4)]
        out = render_history(snaps)
        assert "estimate" in out and "rel.stdev" in out
        assert "->" in out

    def test_non_scalar_history(self):
        table = Table.from_columns({"v": np.array([1.0, 2.0])})
        snap = OnlineSnapshot(
            batch_index=1, num_batches=2, table=table, errors={},
            uncertain_sizes={}, rows_processed={}, rebuilds=[],
            elapsed_s=0.0, confidence=0.95,
        )
        assert render_history([snap]) == "(no scalar history)"

    def test_real_run_history(self, session, sbi_sql):
        snaps = list(session.sql(sbi_sql).run_online())
        out = render_history(snaps)
        assert out.count("\n") == 1
