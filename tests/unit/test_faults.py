"""Unit tests for the fault-injection subsystem (repro.faults)."""

import numpy as np
import pytest

from repro import FaultsConfig, SchemaError
from repro.faults import (
    FaultInjector,
    NULL_INJECTOR,
    RetryPolicy,
    RowQuarantine,
    fault_points,
    register_fault_point,
)
from repro.storage.io import read_csv


class TestFaultsConfig:
    def test_defaults_disabled(self):
        faults = FaultsConfig()
        assert not faults.enabled
        assert faults.batch_failure_prob == 0.0

    def test_parse_enables_and_sets_fields(self):
        faults = FaultsConfig.parse(
            "batch_failure_prob=0.3,max_retries=1,seed=7,speculate=false"
        )
        assert faults.enabled
        assert faults.batch_failure_prob == 0.3
        assert faults.max_retries == 1
        assert faults.seed == 7
        assert faults.speculate is False

    def test_parse_empty_spec_is_enabled_defaults(self):
        faults = FaultsConfig.parse("")
        assert faults.enabled
        assert faults.task_failure_prob == 0.0

    def test_parse_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultsConfig.parse("no_such_knob=1")

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultsConfig(task_failure_prob=1.5)
        with pytest.raises(ValueError):
            FaultsConfig(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultsConfig(max_retries=-1)


class TestFaultPointRegistry:
    def test_builtin_points_registered(self):
        points = fault_points()
        assert {"cluster.task", "cluster.straggler",
                "controller.batch_load", "storage.row"} <= set(points)

    def test_registration_idempotent(self):
        a = register_fault_point("cluster.task", "task")
        b = register_fault_point("cluster.task", "task")
        assert a is b

    def test_kind_conflict_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault_point("cluster.task", "row")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            register_fault_point("x.y", "meteor")

    def test_unregistered_point_refused(self):
        injector = FaultInjector(FaultsConfig(enabled=True,
                                              task_failure_prob=0.5))
        with pytest.raises(ValueError, match="unregistered"):
            injector.task_failures("not.registered", 3)


class TestFaultInjector:
    def test_disabled_injector_never_faults(self):
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.task_failures("cluster.task", 100).sum() == 0
        assert (NULL_INJECTOR.straggler_factors(
            "cluster.straggler", 10) == 1.0).all()
        assert NULL_INJECTOR.batch_load_failures(
            "controller.batch_load") == 0
        assert not NULL_INJECTOR.corrupted_rows("storage.row", 50).any()
        # No RNG stream was ever materialized.
        assert NULL_INJECTOR.state_dict() == {}

    def test_same_seed_same_faults(self):
        config = FaultsConfig(enabled=True, seed=11, task_failure_prob=0.3,
                              straggler_prob=0.2)
        a, b = FaultInjector(config), FaultInjector(config)
        assert (a.task_failures("cluster.task", 200)
                == b.task_failures("cluster.task", 200)).all()
        assert (a.straggler_factors("cluster.straggler", 200)
                == b.straggler_factors("cluster.straggler", 200)).all()

    def test_streams_independent_per_point(self):
        """Draws at one point must not perturb another point's stream."""
        config = FaultsConfig(enabled=True, seed=11, task_failure_prob=0.3,
                              row_corruption_prob=0.2)
        a, b = FaultInjector(config), FaultInjector(config)
        # b draws heavily from an unrelated point first.
        b.corrupted_rows("storage.row", 10_000)
        assert (a.task_failures("cluster.task", 100)
                == b.task_failures("cluster.task", 100)).all()

    def test_master_seed_used_when_unset(self):
        config = FaultsConfig(enabled=True, task_failure_prob=0.5)
        a = FaultInjector(config, master_seed=1)
        b = FaultInjector(config, master_seed=2)
        assert (a.task_failures("cluster.task", 500)
                != b.task_failures("cluster.task", 500)).any()

    def test_certain_failure_exceeds_retry_budget(self):
        config = FaultsConfig(enabled=True, batch_failure_prob=1.0,
                              max_retries=2)
        injector = FaultInjector(config)
        fails = injector.batch_load_failures("controller.batch_load")
        assert fails > config.max_retries

    def test_state_roundtrip_resumes_stream(self):
        config = FaultsConfig(enabled=True, seed=5, task_failure_prob=0.4)
        a = FaultInjector(config)
        a.task_failures("cluster.task", 50)
        state = a.state_dict()
        expected = a.task_failures("cluster.task", 50)
        b = FaultInjector(config)
        b.restore(state)
        assert (b.task_failures("cluster.task", 50) == expected).all()


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.1,
                             backoff_factor=2.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.total_delay(3) == pytest.approx(0.7)

    def test_gives_up_after_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert not policy.gives_up_after(2)
        assert policy.gives_up_after(3)

    def test_from_faults(self):
        faults = FaultsConfig(max_retries=5, retry_backoff_s=0.2,
                              retry_backoff_factor=3.0)
        policy = RetryPolicy.from_faults(faults)
        assert policy.max_retries == 5
        assert policy.delay(1) == pytest.approx(0.6)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestRowQuarantine:
    def test_collects_within_budget(self):
        q = RowQuarantine(error_budget=0.5)
        q.add(2, "x", "oops", "not an int")
        q.check_budget(10, source="t.csv")
        assert q.count == 1
        assert q.fraction == pytest.approx(0.1)
        assert "1/10" in q.summary()

    def test_over_budget_raises(self):
        q = RowQuarantine(error_budget=0.1)
        for i in range(3):
            q.add(i + 2, "x", "bad", "reason")
        with pytest.raises(SchemaError, match="error budget"):
            q.check_budget(10, source="t.csv")

    def test_empty_summary_is_none(self):
        assert RowQuarantine().summary() is None


class TestCsvQuarantine:
    def _write(self, tmp_path, text):
        path = tmp_path / "t.csv"
        path.write_text(text)
        return path

    def test_bool_garbage_raises_without_quarantine(self, tmp_path):
        """Satellite fix: 'maybe' must not silently parse as False."""
        from repro import Column, ColumnType, Schema

        path = self._write(tmp_path, "flag\ntrue\nmaybe\nfalse\n")
        schema = Schema([Column("flag", ColumnType.BOOL)])
        with pytest.raises(SchemaError, match="maybe"):
            read_csv(path, schema=schema)

    def test_bool_garbage_demotes_inference_to_string(self, tmp_path):
        """Without a declared schema a stray token makes the column
        STRING — visible, instead of a silent False."""
        path = self._write(tmp_path, "flag\ntrue\nmaybe\nfalse\n")
        table = read_csv(path)
        assert table.column("flag").tolist() == ["true", "maybe", "false"]

    def test_bool_tokens_still_parse(self, tmp_path):
        path = self._write(tmp_path, "flag\ntrue\nf\nYES\n0\n")
        table = read_csv(path)
        assert table.column("flag").tolist() == [True, False, True, False]

    def test_malformed_rows_quarantined_and_dropped(self, tmp_path):
        path = self._write(
            tmp_path, "id,x\n1,1.5\n2,garbage\n3,2.5\n"
        )
        q = RowQuarantine(error_budget=0.5)
        table = read_csv(path, quarantine=q)
        assert table.num_rows == 2
        assert table.column("id").tolist() == [1, 3]
        assert q.count == 1
        assert q.rows[0].line_number == 3
        assert q.rows[0].column == "x"

    def test_quarantine_over_budget_aborts_load(self, tmp_path):
        from repro import Column, ColumnType, Schema

        path = self._write(
            tmp_path, "x\n1.0\nbad\nworse\nawful\n5.0\n"
        )
        schema = Schema([Column("x", ColumnType.FLOAT64)])
        with pytest.raises(SchemaError, match="error budget"):
            read_csv(path, schema=schema,
                     quarantine=RowQuarantine(error_budget=0.2))

    def test_tolerant_inference_keeps_numeric_type(self, tmp_path):
        """One bad cell must not demote the column to STRING (which
        would let the bad row sail through unquarantined)."""
        rows = "\n".join(str(i) for i in range(40))
        path = self._write(tmp_path, f"x\n{rows}\noops\n")
        q = RowQuarantine(error_budget=0.1)
        table = read_csv(path, quarantine=q)
        assert table.column("x").dtype == np.int64
        assert table.num_rows == 40
        assert q.count == 1

    def test_injector_corrupts_deterministic_rows(self, tmp_path):
        rows = "\n".join(f"{i},{i}.5" for i in range(50))
        path = self._write(tmp_path, f"id,x\n{rows}\n")
        config = FaultsConfig(enabled=True, seed=3,
                              row_corruption_prob=0.1)

        def load():
            q = RowQuarantine(error_budget=0.5)
            return read_csv(path, quarantine=q,
                            injector=FaultInjector(config)), q

        t1, q1 = load()
        t2, q2 = load()
        assert q1.count > 0
        assert q1.count == q2.count
        assert t1.num_rows == t2.num_rows == 50 - q1.count
        assert [r.line_number for r in q1.rows] == \
            [r.line_number for r in q2.rows]
