"""Remaining I/O and rendering edge cases."""

import numpy as np
import pytest

from repro.storage import Column, ColumnType, Schema, read_csv, write_csv
from repro.storage.table import _coerce
from repro.errors import SchemaError


class TestCsvOptions:
    def test_explicit_schema_overrides_inference(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        schema = Schema([Column("a", ColumnType.FLOAT64),
                         Column("b", ColumnType.STRING)])
        t = read_csv(path, schema=schema)
        assert t.schema.type_of("a") is ColumnType.FLOAT64
        assert t.column("b").tolist() == ["2", "4"]

    def test_custom_delimiter_roundtrip(self, tmp_path, small_table):
        path = tmp_path / "t.tsv"
        write_csv(small_table, path, delimiter="\t")
        t = read_csv(path, delimiter="\t")
        assert t.column("grp").tolist() == \
            small_table.column("grp").tolist()

    def test_mixed_numeric_column_widens_to_float(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n2.5\n")
        t = read_csv(path)
        assert t.schema.type_of("a") is ColumnType.FLOAT64


class TestCoercion:
    def test_int_to_float(self):
        out = _coerce(np.array([1, 2]), ColumnType.FLOAT64)
        assert out.dtype == np.float64

    def test_anything_to_string_object(self):
        out = _coerce(np.array([1, 2]), ColumnType.STRING)
        assert out.dtype == object

    def test_two_dimensional_rejected(self):
        with pytest.raises(SchemaError, match="1-D"):
            _coerce(np.ones((2, 2)), ColumnType.FLOAT64)

    def test_uncastable_rejected(self):
        with pytest.raises(SchemaError, match="coerce"):
            _coerce(np.array(["x"], dtype=object), ColumnType.FLOAT64)


class TestExpressionRendering:
    def test_sql_roundtrippable_shapes(self):
        from repro.expr.expressions import (
            Between,
            BooleanOp,
            CaseWhen,
            ColumnRef,
            Comparison,
            FunctionCall,
            InList,
            InSubquery,
            Literal,
            Negate,
            SubqueryRef,
        )

        samples = {
            Comparison(">", ColumnRef("a"), Literal(1)): "(a > 1)",
            Negate(ColumnRef("a")): "(-a)",
            BooleanOp("NOT", [Literal(True)]): "(NOT True)",
            Between(ColumnRef("a"), Literal(0), Literal(1)):
                "(a BETWEEN 0 AND 1)",
            InList(ColumnRef("g"), ["x"]): "(g IN ('x'))",
            SubqueryRef(3): "<subquery#3>",
            InSubquery(ColumnRef("k"), 2, negated=True):
                "(k NOT IN <subquery#2>)",
            FunctionCall("sqrt", [ColumnRef("a")]): "sqrt(a)",
        }
        for expr, expected in samples.items():
            assert expr.sql() == expected

    def test_case_rendering(self):
        from repro.expr.expressions import (
            CaseWhen,
            Comparison,
            ColumnRef,
            Literal,
        )

        expr = CaseWhen(
            [(Comparison(">", ColumnRef("a"), Literal(0)), Literal(1))],
            Literal(0),
        )
        text = expr.sql()
        assert text.startswith("CASE WHEN") and text.endswith("END")

    def test_keyed_subquery_rendering(self):
        from repro.expr.expressions import ColumnRef, SubqueryRef

        expr = SubqueryRef(1, correlation=ColumnRef("k"))
        assert "keyed by k" in expr.sql()
