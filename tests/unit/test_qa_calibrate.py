"""The calibration module's binomial band and coverage measurement."""

import math

import numpy as np
import pytest

from repro.qa import binomial_band, calibration_queries
from repro.qa.calibrate import CalibrationConfig, calibrate_query


class TestBinomialBand:
    def test_band_contains_the_mean(self):
        for n in (20, 60, 100, 400):
            lo, hi = binomial_band(n, 0.95, alpha=1e-3)
            assert 0 <= lo <= 0.95 * n <= hi <= n

    def test_band_widens_as_alpha_shrinks(self):
        lo1, hi1 = binomial_band(100, 0.95, alpha=0.05)
        lo2, hi2 = binomial_band(100, 0.95, alpha=1e-4)
        assert lo2 <= lo1 and hi2 >= hi1
        assert (hi2 - lo2) > (hi1 - lo1)

    def test_band_tightens_relatively_with_more_runs(self):
        lo1, hi1 = binomial_band(50, 0.95, alpha=1e-3)
        lo2, hi2 = binomial_band(1000, 0.95, alpha=1e-3)
        assert (hi1 - lo1) / 50 > (hi2 - lo2) / 1000

    def test_band_has_correct_tail_mass(self):
        # Exact check against an independent pmf summation.
        n, p, alpha = 60, 0.95, 1e-3
        lo, hi = binomial_band(n, p, alpha)

        def pmf(k):
            return math.comb(n, k) * p**k * (1 - p) ** (n - k)

        assert sum(pmf(k) for k in range(0, lo)) <= alpha / 2
        assert sum(pmf(k) for k in range(hi + 1, n + 1)) <= alpha / 2

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            binomial_band(0, 0.95)
        with pytest.raises(ValueError):
            binomial_band(10, 0.0)
        with pytest.raises(ValueError):
            binomial_band(10, 0.95, alpha=0.0)

    def test_simulated_coverage_stays_in_band(self):
        # Monte-Carlo sanity: true-nominal hit counts almost never leave
        # the alpha=1e-3 band across 200 simulated sweeps.
        rng = np.random.default_rng(0)
        n = 100
        lo, hi = binomial_band(n, 0.95, alpha=1e-3)
        hits = rng.binomial(n, 0.95, size=200)
        assert np.mean((hits >= lo) & (hits <= hi)) > 0.99


class TestCalibrationMeasurement:
    def test_known_queries_registered(self):
        names = set(calibration_queries())
        assert {"sbi", "c3", "q17", "q20"} <= names

    def test_sbi_small_run_is_in_band(self):
        config = CalibrationConfig(runs=20, rows=1000, num_batches=4,
                                   bootstrap_trials=30)
        result = calibrate_query(calibration_queries()["sbi"], config)
        assert result.runs == 20
        assert result.ok, (result.hits, result.band)
        assert 0.0 <= result.coverage <= 1.0
        d = result.to_dict()
        assert d["ok"] and d["query"] == "sbi"
