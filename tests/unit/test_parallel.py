"""Unit coverage for ``repro.parallel`` and the vectorized fold kernels.

The contract under test throughout: for a fixed master seed, every way
of evaluating a batch's bootstrap update — dense, streamed in column
chunks, or sharded across any worker count and backend — produces
bit-identical aggregate states.
"""

import pickle

import numpy as np
import pytest

from repro.config import GolaConfig, ParallelConfig
from repro.engine.aggregates import (
    AvgState,
    CountState,
    GroupIndex,
    MaxState,
    MinState,
    QuantileState,
    StdevState,
    SumState,
    VarState,
    _grouped_sum,
)
from repro.errors import ExecutionError
from repro.estimate.bootstrap import (
    _P1_CDF,
    BatchWeights,
    PoissonWeightSource,
    poisson_trial_column,
)
from repro.estimate.random_source import derive_rng
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import (
    HAVE_SHM,
    SERIAL_EXECUTOR,
    ArraySpec,
    ParallelExecutor,
    WorkerPool,
    make_shard_payloads,
    run_fold_shard,
    shard_ranges,
)


class TestShardRanges:
    def test_covers_and_balances(self):
        for trials in (1, 2, 7, 24, 96, 97):
            for shards in (1, 2, 3, 4, 8):
                ranges = shard_ranges(trials, shards)
                assert ranges[0][0] == 0 and ranges[-1][1] == trials
                widths = [hi - lo for lo, hi in ranges]
                assert all(w >= 1 for w in widths)
                assert max(widths) - min(widths) <= 1
                assert sum(widths) == trials
                # contiguous, non-overlapping
                for (_, a_hi), (b_lo, _) in zip(ranges, ranges[1:]):
                    assert a_hi == b_lo

    def test_fewer_ranges_than_shards_when_trials_small(self):
        assert shard_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert shard_ranges(0, 4) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            shard_ranges(-1, 2)
        with pytest.raises(ValueError):
            shard_ranges(4, 0)


class TestWorkerPool:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_preserves_task_order(self, backend):
        with WorkerPool(3, backend=backend) as pool:
            assert pool.map(abs, [-3, 1, -4, -1, 5]) == [3, 1, 4, 1, 5]

    def test_empty_and_single_task(self):
        pool = WorkerPool(2, backend="thread")
        assert pool.map(abs, []) == []
        assert pool.map(abs, [-7]) == [7]
        pool.close()

    def test_close_is_idempotent(self):
        pool = WorkerPool(2, backend="thread")
        pool.map(abs, [-1, -2])
        pool.close()
        pool.close()
        # pools restart lazily after close
        assert pool.map(abs, [-5, 6]) == [5, 6]
        pool.close()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(2, backend="greenlet")


class TestPoissonTrialColumns:
    def test_bucket_table_matches_plain_inverse_cdf(self):
        for trial in range(6):
            col = poisson_trial_column(2015, "t", 0, trial, 20_000)
            rng = derive_rng(2015, f"t:b0:t{trial}")
            u = rng.random(20_000)
            ref = np.searchsorted(_P1_CDF, u, side="right")
            assert np.array_equal(col, ref.astype(np.float64))

    def test_poisson_one_moments(self):
        cols = [poisson_trial_column(7, "m", b, t, 50_000)
                for b in range(2) for t in range(4)]
        draws = np.concatenate(cols)
        assert draws.mean() == pytest.approx(1.0, abs=0.01)
        assert draws.var() == pytest.approx(1.0, abs=0.02)

    def test_shard_is_column_slice_of_dense(self):
        handle = BatchWeights(24, 11, "w", 3, 1000)
        shard = handle.shard(5, 13)          # generated directly
        dense = handle.dense()               # full matrix
        assert np.array_equal(shard, dense[:, 5:13])
        # after dense() is paid for, shard() reuses it
        assert np.shares_memory(handle.shard(0, 4), dense)

    def test_pickle_roundtrip_regenerates_identically(self):
        handle = BatchWeights(16, 3, "w", 7, 500)
        dense = handle.dense()
        clone = pickle.loads(pickle.dumps(handle))
        assert clone._dense is None  # matrix never travels
        assert np.array_equal(clone.dense(), dense)

    def test_columns_independent_of_batch_and_trial(self):
        a = poisson_trial_column(1, "x", 0, 0, 256)
        b = poisson_trial_column(1, "x", 0, 1, 256)
        c = poisson_trial_column(1, "x", 1, 0, 256)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestGroupedSum:
    def _reference(self, group_idx, contrib, groups):
        out = np.zeros((groups, contrib.shape[1]))
        np.add.at(out, group_idx, contrib)
        return out

    def test_matches_scatter_add(self):
        rng = np.random.default_rng(0)
        gi = rng.integers(0, 13, 4000)
        w = rng.random((4000, 9))
        assert np.array_equal(
            _grouped_sum(gi, w, 13), self._reference(gi, w, 13)
        )

    def test_fused_values_identical_to_explicit_contrib(self):
        rng = np.random.default_rng(1)
        gi = rng.integers(0, 5, 2000)
        w = rng.random((2000, 6))
        v = rng.normal(size=2000)
        assert np.array_equal(
            _grouped_sum(gi, w, 5, values=v),
            _grouped_sum(gi, v[:, None] * w, 5),
        )

    def test_column_chunk_invariance(self):
        rng = np.random.default_rng(2)
        gi = rng.integers(0, 7, 1000)
        w = rng.random((1000, 12))
        full = _grouped_sum(gi, w, 7)
        pieces = np.hstack([
            _grouped_sum(gi, w[:, lo:lo + 4], 7) for lo in (0, 4, 8)
        ])
        assert np.array_equal(full, pieces)

    def test_empty(self):
        out = _grouped_sum(np.empty(0, dtype=np.int64),
                           np.empty((0, 4)), 3)
        assert out.shape == (3, 4) and not out.any()


MERGEABLE = [SumState, CountState, AvgState, VarState, StdevState,
             MinState, MaxState]


class TestColumnMerge:
    @pytest.mark.parametrize("state_cls", MERGEABLE)
    def test_shard_merge_bit_identical_to_full_update(self, state_cls):
        rng = np.random.default_rng(3)
        n, trials, groups = 3000, 17, 11
        gi = rng.integers(0, groups, n)
        vals = rng.normal(size=n)
        weights = rng.poisson(1.0, size=(n, trials)).astype(np.float64)

        full = state_cls(trials)
        full.update(gi, vals, weights)

        merged = state_cls(trials)
        merged.ensure_groups(groups)
        for lo, hi in shard_ranges(trials, 4):
            shard = state_cls(hi - lo)
            shard.update(gi, vals, weights[:, lo:hi])
            merged.merge_columns(shard, lo)

        assert np.array_equal(full.finalize(1.5), merged.finalize(1.5))

    def test_quantile_rejects_column_merge(self):
        state = QuantileState(8, q=0.5)
        assert not state.supports_column_merge
        with pytest.raises(ExecutionError):
            state.merge_columns(QuantileState(4, q=0.5), 0)

    def test_merge_outside_width_rejected(self):
        full, shard = SumState(8), SumState(4)
        with pytest.raises(ExecutionError):
            full.merge_columns(shard, 6)  # [6, 10) overruns width 8

    def test_merge_wrong_type_rejected(self):
        with pytest.raises(ExecutionError):
            SumState(8).merge_columns(CountState(4), 0)


class TestGroupIndexIncremental:
    def test_new_keys_appended_old_indices_stable(self):
        index = GroupIndex()
        first = index.encode(np.array([5, 3, 5, 9]))
        assert index.num_groups == 3
        mapping = {k: index.index_of(k) for k in (5, 3, 9)}
        second = index.encode(np.array([9, 2, 5]))
        # old keys keep their dense indices; only 2 is new
        assert index.num_groups == 4
        for k, idx in mapping.items():
            assert index.index_of(k) == idx
        assert second[0] == mapping[9] and second[2] == mapping[5]
        assert first.tolist() == [mapping[5], mapping[3], mapping[5],
                                  mapping[9]]

    def test_version_only_bumps_on_insert(self):
        index = GroupIndex()
        index.encode(np.array([1, 2]))
        v = index._version
        index.encode(np.array([2, 1, 1]))  # no new keys
        assert index._version == v
        index.encode(np.array([3]))
        assert index._version == v + 1

    def test_unchanged_key_array_is_memoized(self):
        index = GroupIndex()
        keys = np.array([4, 4, 8, 15, 16, 23, 42])
        first = index.encode(keys)
        memo = index._memo_result
        assert memo is not None
        second = index.encode(keys)
        assert np.array_equal(first, second)
        assert second is not memo  # callers get a private copy

    def test_add_new_false_marks_unseen(self):
        index = GroupIndex()
        index.encode(np.array([10, 20]))
        v = index._version
        out = index.encode(np.array([20, 30]), add_new=False)
        assert out.tolist() == [index.index_of(20), -1]
        assert index._version == v and index.num_groups == 2


class TestVectorizedFinalizers:
    def test_quantile_finalize_matches_per_trial_reference(self):
        rng = np.random.default_rng(4)
        trials, n = 9, 500
        state = QuantileState(trials, q=0.3, capacity=4096)
        vals = rng.normal(size=n)
        weights = rng.poisson(1.0, size=(n, trials)).astype(np.float64)
        state.update(np.zeros(n, dtype=np.int64), vals, weights)
        out = state.finalize()

        order = np.argsort(vals, kind="stable")
        svals, sw = vals[order], weights[order]
        for t in range(trials):
            cum = np.cumsum(sw[:, t])
            total = cum[-1]
            pos = int((cum < 0.3 * total).sum())
            expect = svals[min(pos, n - 1)] if total > 0 else 0.0
            assert out[0, t] == expect

    @pytest.mark.parametrize("state_cls", [MinState, MaxState])
    def test_extreme_update_matches_per_trial_reference(self, state_cls):
        rng = np.random.default_rng(5)
        n, trials, groups = 800, 7, 5
        gi = rng.integers(0, groups, n)
        vals = rng.normal(size=n)
        weights = rng.poisson(1.0, size=(n, trials)).astype(np.float64)
        state = state_cls(trials)
        state.update(gi, vals, weights)

        ref = np.full((groups, trials), state_cls._fill)
        for t in range(trials):
            present = weights[:, t] > 0
            state_cls._ufunc.at(ref[:, t], gi[present], vals[present])
        assert np.array_equal(state.finalize(), ref)


def _fold_with(config, trials=16, batches=2, n=6000, groups=9,
               lazy=False, tracer=None):
    rng = np.random.default_rng(6)
    gi = rng.integers(0, groups, n)
    values = {
        "s": rng.normal(size=n),
        "a": rng.normal(size=n),
        "q": rng.normal(size=n) if groups == 1 else None,
    }
    states = {"s": SumState(trials), "a": AvgState(trials)}
    if groups == 1:
        states["q"] = QuantileState(trials, q=0.5, capacity=10 ** 6,
                                    seed=42)
        gi = np.zeros(n, dtype=np.int64)
    else:
        del values["q"]
    executor = ParallelExecutor(config, tracer=tracer)
    source = PoissonWeightSource(trials, 2015, label="unit")
    handles = []
    try:
        for _ in range(batches):
            handle = source.batch_weights(n)
            handles.append(handle)
            executor.fold_boot_states(states, gi, values, handle,
                                      lazy=lazy)
        executor.drain()
    finally:
        executor.close()
    return {k: s.finalize() for k, s in states.items()}, handles


class TestParallelExecutor:
    def test_all_backends_and_worker_counts_identical(self):
        ref, _ = _fold_with(ParallelConfig())
        for config in (
            ParallelConfig(workers=1, backend="serial"),
            ParallelConfig(workers=2, backend="thread"),
            ParallelConfig(workers=4, backend="thread"),
            ParallelConfig(workers=3, backend="process"),
        ):
            out, _ = _fold_with(config)
            for alias in ref:
                assert np.array_equal(ref[alias], out[alias]), \
                    (config, alias)

    def test_serial_streaming_never_materializes_dense(self):
        _, handles = _fold_with(ParallelConfig())
        assert all(h._dense is None for h in handles)

    def test_sharded_run_never_materializes_dense(self):
        _, handles = _fold_with(
            ParallelConfig(workers=2, backend="thread")
        )
        assert all(h._dense is None for h in handles)

    def test_small_batches_skip_sharding(self):
        config = ParallelConfig(workers=4, min_shard_rows=10 ** 9)
        ref, _ = _fold_with(ParallelConfig(min_shard_rows=10 ** 9))
        out, handles = _fold_with(config)
        for alias in ref:
            assert np.array_equal(ref[alias], out[alias])
        assert all(h._dense is not None for h in handles)  # dense path

    def test_non_mergeable_state_takes_dense_path(self):
        ref, _ = _fold_with(ParallelConfig(), groups=1)
        out, _ = _fold_with(
            ParallelConfig(workers=2, backend="thread"), groups=1
        )
        for alias in ref:
            assert np.array_equal(ref[alias], out[alias]), alias

    def test_from_gola_config(self):
        config = GolaConfig(
            parallel=ParallelConfig(workers=2, backend="serial")
        )
        executor = ParallelExecutor.from_config(config)
        assert executor.config.workers == 2
        assert executor.enabled
        assert not SERIAL_EXECUTOR.enabled

    def test_map_block_tasks_orders_results(self):
        executor = ParallelExecutor(ParallelConfig(workers=3))
        try:
            results = executor.map_block_tasks(
                [lambda i=i: i * i for i in range(7)]
            )
        finally:
            executor.close()
        assert results == [i * i for i in range(7)]

    def test_shard_payload_carries_spec_not_matrix(self):
        handle = BatchWeights(8, 1, "p", 0, 64)
        gi = np.zeros(64, dtype=np.int64)
        payloads = make_shard_payloads(
            [("x", SumState)], gi, {"x": np.ones(64)}, handle,
            shard_ranges(8, 2),
        )
        assert all("weights" not in p for p in payloads)
        assert all(p["weight_spec"] == handle.spec() for p in payloads)
        (alias, state), = run_fold_shard(payloads[1])
        assert alias == "x" and state.width == 4


class TestZeroCopyPipeline:
    """Shared-memory publish + pipelined lazy folds (ISSUE 8) stay
    bit-identical to the classic eager inline-payload path, for every
    combination of the transport knobs and start methods."""

    def test_process_shm_pipeline_identical_to_serial(self):
        ref, _ = _fold_with(ParallelConfig())
        out, _ = _fold_with(
            ParallelConfig(workers=2, backend="process"), lazy=True
        )
        for alias in ref:
            assert np.array_equal(ref[alias], out[alias]), alias

    def test_transport_knobs_off_identical(self):
        ref, _ = _fold_with(ParallelConfig())
        for config in (
            ParallelConfig(workers=2, backend="process",
                           shared_memory=False),
            ParallelConfig(workers=2, backend="process",
                           pipeline=False),
        ):
            out, _ = _fold_with(config, lazy=True)
            for alias in ref:
                assert np.array_equal(ref[alias], out[alias]), \
                    (config, alias)

    @pytest.mark.slow
    def test_spawn_start_method_identical(self):
        # spawn re-imports workers from scratch: only module-level task
        # functions and spec-sized payloads survive the trip.
        ref, _ = _fold_with(ParallelConfig())
        out, _ = _fold_with(
            ParallelConfig(workers=2, backend="process",
                           start_method="spawn"),
            lazy=True,
        )
        for alias in ref:
            assert np.array_equal(ref[alias], out[alias]), alias

    @pytest.mark.skipif(not HAVE_SHM, reason="no shared memory")
    def test_shm_and_pipeline_counters(self):
        tracer = Tracer(metrics=MetricsRegistry(enabled=True))
        _fold_with(ParallelConfig(workers=2, backend="process"),
                   lazy=True, tracer=tracer)
        counters = tracer.metrics.snapshot().counters
        assert counters["parallel.shm_segments_created"] == 2
        assert counters["parallel.shm_bytes"] > 0
        assert counters["parallel.pipeline_overlap_s"] > 0

    @pytest.mark.skipif(not HAVE_SHM, reason="no shared memory")
    def test_published_payloads_carry_specs(self):
        from repro.parallel.shm import ShmRegistry, detach_all

        handle = BatchWeights(8, 1, "p", 0, 64)
        gi = np.zeros(64, dtype=np.int64)
        vals = {"x": np.ones(64)}
        try:
            with ShmRegistry() as registry:
                lease = registry.publish(
                    {"group_idx": gi, "value:x": vals["x"]}
                )
                payloads = make_shard_payloads(
                    [("x", SumState)], gi, vals, handle,
                    shard_ranges(8, 2), published=lease.specs,
                )
                assert all(isinstance(p["group_idx"], ArraySpec)
                           for p in payloads)
                assert all(isinstance(p["values"]["x"], ArraySpec)
                           for p in payloads)
                (alias, state), = run_fold_shard(payloads[0])
                assert alias == "x" and state.width == 4
                lease.release()
        finally:
            detach_all()

    def test_invalid_start_method_rejected(self):
        with pytest.raises(ValueError):
            ParallelConfig(start_method="greenlet")
        with pytest.raises(ValueError):
            WorkerPool(2, start_method="gevent")


class TestBlockLevels:
    def test_levels_respect_slot_dependencies(self):
        from types import SimpleNamespace

        from repro.core.controller import _block_levels

        blocks = [
            SimpleNamespace(block_id=0, consumes=(), produces=1),
            SimpleNamespace(block_id=1, consumes=(), produces=2),
            SimpleNamespace(block_id=2, consumes=(1, 2), produces=3),
            SimpleNamespace(block_id=3, consumes=(), produces=None),
            SimpleNamespace(block_id=4, consumes=(3,), produces=None),
        ]
        levels = _block_levels(blocks)
        ids = [[b.block_id for b in level] for level in levels]
        assert ids == [[0, 1, 3], [2], [4]]

    def test_independent_blocks_share_one_level(self):
        from types import SimpleNamespace

        from repro.core.controller import _block_levels

        blocks = [
            SimpleNamespace(block_id=i, consumes=(), produces=None)
            for i in range(4)
        ]
        assert len(_block_levels(blocks)) == 1
