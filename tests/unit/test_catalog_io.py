"""Unit tests for the catalog and table I/O."""

import numpy as np
import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage import (
    Catalog,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)


class TestCatalog:
    def test_register_get(self, small_table):
        cat = Catalog()
        cat.register("T1", small_table)
        assert cat.get("t1") is small_table  # case-insensitive
        assert "T1" in cat

    def test_duplicate_rejected_unless_replace(self, small_table):
        cat = Catalog()
        cat.register("t", small_table)
        with pytest.raises(CatalogError, match="already"):
            cat.register("t", small_table)
        cat.register("t", small_table, replace=True)

    def test_unknown_table(self):
        with pytest.raises(CatalogError, match="unknown"):
            Catalog().get("nope")

    def test_streamed_flag(self, small_table):
        cat = Catalog()
        cat.register("fact", small_table, streamed=True)
        cat.register("dim", small_table, streamed=False)
        assert cat.is_streamed("fact") and not cat.is_streamed("dim")
        cat.set_streamed("fact", False)
        assert not cat.is_streamed("fact")

    def test_unregister(self, small_table):
        cat = Catalog()
        cat.register("t", small_table)
        cat.unregister("t")
        assert "t" not in cat
        with pytest.raises(CatalogError):
            cat.unregister("t")

    def test_names_sorted(self, small_table):
        cat = Catalog()
        cat.register("zeta", small_table)
        cat.register("alpha", small_table)
        assert cat.names() == ["alpha", "zeta"]


class TestCsvRoundtrip:
    def test_roundtrip(self, small_table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(small_table, path)
        loaded = read_csv(path)
        assert loaded.num_rows == small_table.num_rows
        assert loaded.column("id").tolist() == \
            small_table.column("id").tolist()
        np.testing.assert_allclose(
            loaded.column("x"), small_table.column("x")
        )
        assert loaded.column("flag").tolist() == \
            small_table.column("flag").tolist()

    def test_type_inference_narrowest(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b,c,d\n1,1.5,true,hello\n2,2.5,false,bye\n")
        t = read_csv(path)
        assert t.schema.type_of("a").value == "int64"
        assert t.schema.type_of("b").value == "float64"
        assert t.schema.type_of("c").value == "bool"
        assert t.schema.type_of("d").value == "string"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)


class TestJsonlRoundtrip:
    def test_roundtrip(self, small_table, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(small_table, path)
        loaded = read_jsonl(path)
        assert loaded.num_rows == small_table.num_rows
        assert loaded.column("grp").tolist() == \
            small_table.column("grp").tolist()

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("\n")
        with pytest.raises(SchemaError):
            read_jsonl(path)
