"""Unit tests for per-block delta maintenance (BlockRuntime internals)."""

import numpy as np
import pytest

from repro import GolaConfig
from repro.core.delta import BlockRuntime, CachedRows, parse_block
from repro.core.uncertain import ScalarSlotState
from repro.errors import RangeViolation, UnsupportedQueryError
from repro.estimate import VariationRange
from repro.expr.expressions import Environment
from repro.plan import bind_statement, lineage_blocks
from repro.sql import parse_sql
from repro.storage import Catalog, Schema, Table


@pytest.fixture
def fact():
    rng = np.random.default_rng(1)
    n = 400
    return Table.from_columns(
        {
            "k": rng.integers(0, 10, n).astype(np.int64),
            "x": rng.normal(10.0, 3.0, n),
            "y": rng.exponential(5.0, n),
        }
    )


def build_runtime(sql, fact, **config_kwargs):
    cat = Catalog()
    cat.register("fact", fact, streamed=True)
    query = bind_statement(parse_sql(sql), cat)
    blocks = lineage_blocks(query)
    config = GolaConfig(num_batches=4, bootstrap_trials=16, seed=1,
                        **config_kwargs)
    runtimes = {}
    for block in blocks:
        spec = query.subqueries.get(block.produces) \
            if block.produces is not None else None
        runtimes[block.block_id] = BlockRuntime(block, spec, config, {})
    return query, blocks, runtimes, config


class TestParseBlock:
    def test_simple_chain(self, fact):
        query, blocks, runtimes, _ = build_runtime(
            "SELECT AVG(x) FROM fact WHERE y > 1", fact
        )
        pipe = runtimes["main"].pipeline
        assert pipe.scan.table_name == "fact"
        assert len(pipe.certain_steps) == 1
        assert not pipe.uncertain_predicates

    def test_uncertain_conjunct_split(self, fact):
        query, blocks, runtimes, _ = build_runtime(
            "SELECT AVG(x) FROM fact WHERE y > 1 AND x > "
            "(SELECT AVG(x) FROM fact)",
            fact,
        )
        pipe = runtimes["main"].pipeline
        assert len(pipe.certain_steps) == 1
        assert len(pipe.uncertain_predicates) == 1

    def test_non_aggregate_rejected(self, fact):
        cat = Catalog()
        cat.register("fact", fact)
        query = bind_statement(parse_sql("SELECT x FROM fact"), cat)
        with pytest.raises(UnsupportedQueryError, match="aggregate"):
            parse_block(query.plan)

    def test_lineage_columns_minimal(self, fact):
        query, blocks, runtimes, _ = build_runtime(
            "SELECT AVG(x) FROM fact WHERE y > "
            "(SELECT AVG(y) FROM fact)",
            fact,
        )
        # Only the predicate column (y) is lineage; x is precomputed.
        assert runtimes["main"]._needed_columns == ["y"]


class TestCachedRows:
    def test_size_survives_empty_schema(self):
        rows = CachedRows(
            table=Table.empty(Schema([])),
            weights=np.ones((3, 2)),
            group_idx=np.zeros(3, dtype=np.int64),
            values={"a": np.arange(3.0)},
        )
        assert rows.size == 3
        taken = rows.take(np.array([True, False, True]))
        assert taken.size == 2

    def test_concat(self):
        base = CachedRows(
            table=Table.from_columns({"c": np.array([1.0, 2.0])}),
            weights=np.ones((2, 2)),
            group_idx=np.zeros(2, dtype=np.int64),
            values={"a": np.array([1.0, 2.0])},
        )
        out = CachedRows.concat([base, base])
        assert out.size == 4
        assert out.values["a"].tolist() == [1.0, 2.0, 1.0, 2.0]


def drive(runtimes, blocks, query, fact, config, num_batches=4):
    """Minimal controller loop for unit-level driving."""
    from repro.estimate import PoissonWeightSource
    from repro.storage import MiniBatchPartitioner

    partitioner = MiniBatchPartitioner(num_batches, seed=config.seed)
    weights_src = PoissonWeightSource(config.bootstrap_trials, config.seed)
    retained = []
    history = []
    for i, batch in enumerate(partitioner.partition(fact), start=1):
        weights = weights_src.weights_for(batch.num_rows)
        retained.append((batch, weights))
        scale = num_batches / i
        penv = Environment()
        slot_states = {}
        snapshot_stats = {}
        for block in blocks:
            runtime = runtimes[block.block_id]
            stats = runtime.process_batch(
                i, batch, weights, slot_states, penv, retained=retained
            )
            snapshot_stats[block.block_id] = stats
            if block.produces is not None:
                state = runtime.publish(penv, slot_states, scale)
                slot_states[block.produces] = state
                state.bind_point(penv)
        history.append((snapshot_stats, dict(slot_states), penv, scale))
    return history


class TestBlockRuntimeMechanics:
    def test_uncertain_cache_bounded(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        history = drive(runtimes, blocks, query, fact, config)
        final_stats = history[-1][0]["main"]
        assert final_stats.uncertain_size < fact.num_rows * 0.5

    def test_candidates_are_delta_plus_cache(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        history = drive(runtimes, blocks, query, fact, config)
        for i in range(1, len(history)):
            stats = history[i][0]["main"]
            prev = history[i - 1][0]["main"]
            if not stats.rebuilt:
                assert stats.candidates == \
                    stats.rows_in + prev.uncertain_size

    def test_final_estimate_matches_exact(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        history = drive(runtimes, blocks, query, fact, config)
        _, slot_states, penv, scale = history[-1]
        table, _ = runtimes["main"].snapshot_output(penv, slot_states, 1.0)
        inner = fact["x"].mean()
        expected = fact["y"][fact["x"] > inner].mean()
        assert float(table.column(table.schema.names[0])[0]) == \
            pytest.approx(expected, rel=1e-9)

    def test_publish_scalar_state(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        history = drive(runtimes, blocks, query, fact, config)
        _, slot_states, _, _ = history[-1]
        state = slot_states[0]
        assert isinstance(state, ScalarSlotState)
        assert state.vrange.contains(state.estimate)
        assert state.vrange.contains_all(state.replicas)
        assert state.estimate == pytest.approx(fact["x"].mean(), rel=1e-9)

    def test_guard_violation_without_retained_raises(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        main = runtimes["main"]
        # Manually poison the guard, then feed a state far outside it.
        from repro.core.delta import _ScalarGuard

        guard = _ScalarGuard()
        guard.range = VariationRange(0.0, 1.0)
        main.guards[0] = guard
        bad_state = ScalarSlotState(
            slot=0, estimate=100.0, replicas=np.array([99.0, 101.0]),
            vrange=VariationRange(99.0, 101.0),
        )
        with pytest.raises(RangeViolation):
            main.process_batch(
                1, fact, np.ones((fact.num_rows, config.bootstrap_trials)),
                {0: bad_state}, Environment(), retained=None,
            )

    def test_guard_violation_with_retained_rebuilds(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        main = runtimes["main"]
        from repro.core.delta import _ScalarGuard

        guard = _ScalarGuard()
        guard.range = VariationRange(0.0, 1.0)
        main.guards[0] = guard
        state = ScalarSlotState(
            slot=0, estimate=10.0, replicas=np.array([9.5, 10.5]),
            vrange=VariationRange(9.0, 11.0),
        )
        weights = np.ones((fact.num_rows, config.bootstrap_trials))
        stats = main.process_batch(
            1, fact, weights, {0: state}, Environment(),
            retained=[(fact, weights)],
        )
        assert stats.rebuilt and stats.rebuild_rows == fact.num_rows
        assert main.recompute_count == 1

    def test_grouped_snapshot_only_present_groups(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT k, COUNT(*) AS n FROM fact "
            "WHERE x > (SELECT AVG(x) FROM fact) GROUP BY k",
            fact,
        )
        history = drive(runtimes, blocks, query, fact, config)
        _, slot_states, penv, _ = history[-1]
        table, _ = runtimes["main"].snapshot_output(penv, slot_states, 1.0)
        inner = fact["x"].mean()
        mask = fact["x"] > inner
        expected_groups = set(np.unique(fact["k"][mask]).tolist())
        got = set(int(v) for v in table.column("k"))
        assert got == expected_groups

    def test_stats_history_recorded(self, fact):
        query, blocks, runtimes, config = build_runtime(
            "SELECT AVG(y) FROM fact WHERE x > (SELECT AVG(x) FROM fact)",
            fact,
        )
        drive(runtimes, blocks, query, fact, config)
        assert len(runtimes["main"].stats_history) == 4
        assert all(s.batch_index == i + 1
                   for i, s in enumerate(runtimes["main"].stats_history))
