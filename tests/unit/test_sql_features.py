"""SQL feature combinations through the full stack (bind + execute)."""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession, Table


@pytest.fixture
def session():
    rng = np.random.default_rng(33)
    n = 3000
    s = GolaSession(GolaConfig(num_batches=3, bootstrap_trials=12, seed=2))
    s.register_table("fact", Table.from_columns({
        "k": rng.integers(0, 20, n).astype(np.int64),
        "cat": np.array(
            ["red", "green", "blue"], dtype=object
        )[rng.integers(0, 3, n)],
        "x": rng.normal(10.0, 4.0, n),
        "y": rng.exponential(3.0, n),
    }), streamed=True)
    s.register_table("dim", Table.from_columns({
        "k": np.arange(20, dtype=np.int64),
        "zone": np.array(
            ["east" if i < 10 else "west" for i in range(20)], dtype=object
        ),
    }), streamed=False)
    return s


class TestSqlFeatures:
    def test_case_when_in_projection(self, session):
        out = session.execute_batch("""
            SELECT SUM(CASE WHEN x > 10 THEN 1 ELSE 0 END) AS hi,
                   SUM(CASE WHEN x <= 10 THEN 1 ELSE 0 END) AS lo
            FROM fact
        """)
        row = out.to_pylist()[0]
        fact = session.catalog.get("fact")
        assert row["hi"] == (fact["x"] > 10).sum()
        assert row["hi"] + row["lo"] == 3000

    def test_between_and_in_list(self, session):
        out = session.execute_batch("""
            SELECT COUNT(*) AS n FROM fact
            WHERE x BETWEEN 8 AND 12 AND cat IN ('red', 'blue')
        """)
        fact = session.catalog.get("fact")
        mask = (fact["x"] >= 8) & (fact["x"] <= 12) & (
            (fact["cat"] == "red") | (fact["cat"] == "blue")
        )
        assert out.to_pylist()[0]["n"] == mask.sum()

    def test_not_in_list(self, session):
        out = session.execute_batch(
            "SELECT COUNT(*) AS n FROM fact WHERE cat NOT IN ('red')"
        )
        fact = session.catalog.get("fact")
        assert out.to_pylist()[0]["n"] == (fact["cat"] != "red").sum()

    def test_scalar_functions_in_where(self, session):
        out = session.execute_batch(
            "SELECT COUNT(*) AS n FROM fact WHERE ABS(x - 10) < 2"
        )
        fact = session.catalog.get("fact")
        assert out.to_pylist()[0]["n"] == \
            (np.abs(fact["x"] - 10) < 2).sum()

    def test_arithmetic_between_aggregates(self, session):
        out = session.execute_batch("""
            SELECT (SUM(x) - SUM(y)) / COUNT(*) AS gap FROM fact
        """)
        fact = session.catalog.get("fact")
        expected = (fact["x"].sum() - fact["y"].sum()) / 3000
        assert out.to_pylist()[0]["gap"] == pytest.approx(expected)

    def test_join_group_order_limit(self, session):
        out = session.execute_batch("""
            SELECT zone, COUNT(*) AS n FROM fact
            JOIN dim ON fact.k = dim.k
            GROUP BY zone ORDER BY n DESC LIMIT 1
        """)
        assert out.num_rows == 1
        assert out.to_pylist()[0]["zone"] in ("east", "west")

    def test_join_online_with_nested_aggregate(self, session):
        """Dimension join + uncertain threshold, online == exact."""
        sql = """
            SELECT zone, AVG(x) AS m FROM fact
            JOIN dim ON fact.k = dim.k
            WHERE y > (SELECT AVG(y) FROM fact)
            GROUP BY zone ORDER BY zone
        """
        query = session.sql(sql)
        exact = session.execute_batch(query)
        last = query.run_to_completion()
        np.testing.assert_allclose(
            last.table.column("m").astype(float),
            exact.column("m").astype(float), rtol=1e-9,
        )

    def test_having_with_subquery_online(self, session):
        sql = """
            SELECT k, SUM(x) AS total FROM fact GROUP BY k
            HAVING SUM(x) > (SELECT 0.06 * SUM(x) FROM fact)
            ORDER BY total DESC
        """
        query = session.sql(sql)
        exact = session.execute_batch(query)
        last = query.run_to_completion()
        assert last.table.num_rows == exact.num_rows
        np.testing.assert_allclose(
            last.table.column("total").astype(float),
            exact.column("total").astype(float), rtol=1e-9,
        )

    def test_string_group_keys_online(self, session):
        sql = """
            SELECT cat, COUNT(*) AS n FROM fact
            WHERE x > (SELECT AVG(x) FROM fact)
            GROUP BY cat ORDER BY cat
        """
        query = session.sql(sql)
        exact = session.execute_batch(query)
        last = query.run_to_completion()
        assert last.table.column("cat").tolist() == \
            exact.column("cat").tolist()
        np.testing.assert_allclose(
            last.table.column("n").astype(float),
            exact.column("n").astype(float),
        )

    def test_udf_inside_online_query(self, session):
        session.register_udf("halved", lambda v: v / 2.0)
        sql = """
            SELECT AVG(halved(x)) AS m FROM fact
            WHERE y > (SELECT AVG(y) FROM fact)
        """
        query = session.sql(sql)
        exact = session.execute_batch(query)
        last = query.run_to_completion()
        assert last.estimate == pytest.approx(
            float(exact.column("m")[0]), rel=1e-9
        )

    def test_negative_literals_and_unary_minus(self, session):
        out = session.execute_batch(
            "SELECT COUNT(*) AS n FROM fact WHERE -x < -12"
        )
        fact = session.catalog.get("fact")
        assert out.to_pylist()[0]["n"] == (fact["x"] > 12).sum()

    def test_order_by_multiple_keys(self, session):
        out = session.execute_batch("""
            SELECT cat, k, COUNT(*) AS n FROM fact
            GROUP BY cat, k ORDER BY cat ASC, n DESC LIMIT 5
        """)
        cats = out.column("cat").tolist()
        assert cats == sorted(cats)
