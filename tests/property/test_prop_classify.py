"""Property-based tests: soundness of three-valued classification.

The fundamental safety property of G-OLA's delta maintenance: whenever
classification calls a tuple deterministic (TRI_TRUE / TRI_FALSE), the
point evaluation under ANY value inside the variation range must agree.
If this held only usually, folded tuples could be wrong and the final
answer would drift from the exact engine's.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import IntervalEnv, ScalarSlotState, TRI_FALSE, TRI_TRUE
from repro.core.classify import tri_eval
from repro.estimate import VariationRange
from repro.expr.expressions import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Environment,
    Literal,
    SubqueryRef,
)
from repro.storage import Table

finite = st.floats(min_value=-1e4, max_value=1e4,
                   allow_nan=False, allow_infinity=False)

column = arrays(np.float64, st.integers(min_value=1, max_value=40),
                elements=finite)

OPS = ["<", "<=", ">", ">=", "=", "!="]


@st.composite
def scenario(draw):
    values = draw(column)
    a = draw(finite)
    b = draw(finite)
    low, high = min(a, b), max(a, b)
    # Probe points: endpoints plus interior samples.
    probes = [low, high, (low + high) / 2]
    op = draw(st.sampled_from(OPS))
    return values, low, high, probes, op


@given(scenario())
@settings(max_examples=150, deadline=None)
def test_deterministic_decisions_hold_over_entire_range(data):
    values, low, high, probes, op = data
    table = Table.from_columns({"x": values})
    state = ScalarSlotState(
        slot=0, estimate=(low + high) / 2,
        replicas=np.array([low, high]),
        vrange=VariationRange(low, high),
    )
    env = IntervalEnv(slots={0: state},
                      point=Environment(scalars={0: state.estimate}))
    predicate = Comparison(op, ColumnRef("x"), SubqueryRef(0))
    tri = tri_eval(predicate, table, env)
    for probe in probes:
        point = predicate.evaluate(
            table, Environment(scalars={0: probe})
        )
        point = np.broadcast_to(np.asarray(point, dtype=bool),
                                (table.num_rows,))
        for t, p in zip(tri, point):
            if t == TRI_TRUE:
                assert p, f"{op} claimed TRUE but probe {probe} says False"
            elif t == TRI_FALSE:
                assert not p, f"{op} claimed FALSE but probe {probe} " \
                              "says True"


@given(scenario(), finite)
@settings(max_examples=100, deadline=None)
def test_arithmetic_over_uncertain_is_sound(data, shift):
    """Same soundness through an arithmetic expression on the slot."""
    values, low, high, probes, op = data
    table = Table.from_columns({"x": values})
    state = ScalarSlotState(
        slot=0, estimate=(low + high) / 2,
        replicas=np.array([low, high]),
        vrange=VariationRange(low, high),
    )
    env = IntervalEnv(slots={0: state},
                      point=Environment(scalars={0: state.estimate}))
    rhs = BinaryOp("+", SubqueryRef(0), Literal(shift))
    predicate = Comparison(op, ColumnRef("x"), rhs)
    tri = tri_eval(predicate, table, env)
    for probe in probes:
        point = np.broadcast_to(
            np.asarray(
                predicate.evaluate(table, Environment(scalars={0: probe})),
                dtype=bool,
            ),
            (table.num_rows,),
        )
        for t, p in zip(tri, point):
            if t == TRI_TRUE:
                assert p
            elif t == TRI_FALSE:
                assert not p


@given(column)
@settings(max_examples=60, deadline=None)
def test_degenerate_range_never_unknown(values):
    """With a collapsed range the classifier must be fully decisive."""
    table = Table.from_columns({"x": values})
    state = ScalarSlotState(
        slot=0, estimate=1.0, replicas=np.array([1.0, 1.0]),
        vrange=VariationRange(1.0, 1.0),
    )
    env = IntervalEnv(slots={0: state},
                      point=Environment(scalars={0: 1.0}))
    predicate = Comparison(">", ColumnRef("x"), SubqueryRef(0))
    tri = tri_eval(predicate, table, env)
    point = predicate.evaluate(table, env.point)
    np.testing.assert_array_equal(tri == TRI_TRUE, point)
    np.testing.assert_array_equal(tri == TRI_FALSE, ~np.asarray(point))
