"""Property-based end-to-end test: online == exact for random queries.

The capstone invariant of the whole system: for randomly generated data,
a randomly parameterized nested-aggregate query, any batch count and any
seed, the final G-OLA snapshot must equal the exact batch answer — delta
maintenance (classification, caching, guards, rebuilds) is an
optimization, never an approximation of the final result.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GolaConfig, GolaSession, Table


@st.composite
def dataset(draw):
    n = draw(st.integers(min_value=40, max_value=400))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        {
            "k": rng.integers(0, 6, n).astype(np.int64),
            "x": rng.normal(10.0, 4.0, n),
            "y": rng.exponential(3.0, n),
        }
    )


QUERY_TEMPLATES = [
    # Scalar uncertain threshold.
    "SELECT AVG(y) FROM fact WHERE x > (SELECT {m} * AVG(x) FROM fact)",
    # COUNT with uncertain threshold.
    "SELECT COUNT(*) FROM fact WHERE x < (SELECT {m} * AVG(x) FROM fact)",
    # Correlated (keyed) threshold.
    "SELECT SUM(y) FROM fact WHERE x > "
    "(SELECT {m} * AVG(x) FROM fact f WHERE f.k = fact.k)",
    # Grouped output with uncertain filter.
    "SELECT k, COUNT(*) AS n FROM fact WHERE x > "
    "(SELECT {m} * AVG(x) FROM fact) GROUP BY k",
    # Uncertain set membership.
    "SELECT COUNT(*) FROM fact WHERE k IN "
    "(SELECT k FROM fact GROUP BY k HAVING SUM(y) > {t})",
]


@given(
    dataset(),
    st.sampled_from(QUERY_TEMPLATES),
    st.floats(min_value=0.5, max_value=1.5),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_final_online_snapshot_equals_exact(table, template, mult, k, seed):
    sql = template.format(m=round(mult, 3), t=round(mult * 30, 2))
    session = GolaSession(
        GolaConfig(num_batches=k, bootstrap_trials=12, seed=seed)
    )
    session.register_table("fact", table)
    query = session.sql(sql)
    exact = session.execute_batch(query)
    last = query.run_to_completion()
    online = last.table
    assert online.num_rows == exact.num_rows
    for col in exact.schema.names:
        a = np.sort(exact.column(col).astype(np.float64))
        b = np.sort(online.column(col).astype(np.float64))
        np.testing.assert_allclose(a, b, rtol=1e-7, atol=1e-9)


@given(dataset(), st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=500))
@settings(max_examples=15, deadline=None)
def test_online_series_matches_cdm_prefix_series(table, k, seed):
    """Every intermediate snapshot equals exact prefix recomputation."""
    from repro.baselines import ClassicalDeltaMaintenance
    from repro.plan import bind_statement
    from repro.sql import parse_sql
    from repro.storage import Catalog

    sql = ("SELECT AVG(y) FROM fact WHERE x > "
           "(SELECT AVG(x) FROM fact)")
    config = GolaConfig(num_batches=k, bootstrap_trials=10, seed=seed)
    session = GolaSession(config)
    session.register_table("fact", table)
    online = [s.estimate for s in session.sql(sql).run_online()]

    cat = Catalog()
    cat.register("fact", table, streamed=True)
    query = bind_statement(parse_sql(sql), cat)
    cdm = ClassicalDeltaMaintenance(query, {"fact": table}, config)
    prefix = [
        float(s.table.column(s.table.schema.names[0])[0]) for s in cdm.run()
    ]
    np.testing.assert_allclose(online, prefix, rtol=1e-8)
