"""Property test: parse -> bind -> execute equals direct numpy evaluation.

Random arithmetic/comparison expressions are rendered to SQL text,
pushed through the whole front end and the engine, and checked against a
parallel numpy evaluation of the same tree — end-to-end front-end
soundness on arbitrary well-formed input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BatchExecutor
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table

N = 37
_RNG = np.random.default_rng(5)
_COLUMNS = {
    "a": _RNG.uniform(-10, 10, N).round(3),
    "b": _RNG.uniform(1, 5, N).round(3),
}
_TABLE = Table.from_columns(_COLUMNS)
_CATALOG = Catalog()
_CATALOG.register("t", _TABLE)
_EXECUTOR = BatchExecutor({"t": _TABLE})


class Node:
    """A tiny expression AST rendered both to SQL and to numpy."""

    def __init__(self, sql, fn):
        self.sql = sql
        self.fn = fn


@st.composite
def numeric_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            value = draw(st.integers(min_value=-9, max_value=9))
            return Node(str(value), lambda cols, v=value: np.full(N, float(v)))
        name = draw(st.sampled_from(["a", "b"]))
        return Node(name, lambda cols, n=name: cols[n].astype(float))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(numeric_expr(depth=depth + 1))
    right = draw(numeric_expr(depth=depth + 1))
    fns = {"+": np.add, "-": np.subtract, "*": np.multiply}
    return Node(
        f"({left.sql} {op} {right.sql})",
        lambda cols, l=left, r=right, f=fns[op]: f(l.fn(cols), r.fn(cols)),
    )


@st.composite
def predicate_expr(draw):
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    left = draw(numeric_expr())
    right = draw(numeric_expr())
    ops = {
        "<": np.less, "<=": np.less_equal, ">": np.greater,
        ">=": np.greater_equal, "=": np.equal, "!=": np.not_equal,
    }
    return Node(
        f"{left.sql} {op} {right.sql}",
        lambda cols, l=left, r=right, f=ops[op]: f(l.fn(cols), r.fn(cols)),
    )


@given(numeric_expr())
@settings(max_examples=120, deadline=None)
def test_projection_roundtrip(node):
    sql = f"SELECT {node.sql} AS v FROM t"
    query = bind_statement(parse_sql(sql), _CATALOG)
    out = _EXECUTOR.execute(query)
    np.testing.assert_allclose(
        out.column("v").astype(float), node.fn(_COLUMNS),
        rtol=1e-9, atol=1e-9,
    )


@given(predicate_expr())
@settings(max_examples=120, deadline=None)
def test_where_roundtrip(node):
    sql = f"SELECT COUNT(*) AS n FROM t WHERE {node.sql}"
    query = bind_statement(parse_sql(sql), _CATALOG)
    out = _EXECUTOR.execute(query)
    expected = int(node.fn(_COLUMNS).sum())
    assert int(out.column("n")[0]) == expected


@given(numeric_expr())
@settings(max_examples=80, deadline=None)
def test_aggregate_roundtrip(node):
    sql = f"SELECT SUM({node.sql}) AS s, AVG({node.sql}) AS m FROM t"
    query = bind_statement(parse_sql(sql), _CATALOG)
    out = _EXECUTOR.execute(query)
    values = node.fn(_COLUMNS)
    assert float(out.column("s")[0]) == pytest.approx(
        float(values.sum()), rel=1e-9, abs=1e-7
    )
    assert float(out.column("m")[0]) == pytest.approx(
        float(values.mean()), rel=1e-9, abs=1e-9
    )
