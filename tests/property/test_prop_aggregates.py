"""Property-based tests: mergeable aggregate state algebra.

The delta-maintenance correctness of G-OLA rests on these algebraic
properties — any split of the data into update calls, and any merge tree
over partial states, must give the same finalized values.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.engine.aggregates import (
    AvgState,
    CountState,
    MaxState,
    MinState,
    StdevState,
    SumState,
    VarState,
)

STATE_TYPES = [SumState, CountState, AvgState, MinState, MaxState,
               VarState, StdevState]

values_strategy = arrays(
    np.float64, st.integers(min_value=1, max_value=120),
    elements=st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
)


@st.composite
def grouped_data(draw):
    values = draw(values_strategy)
    n = len(values)
    groups = draw(arrays(np.int64, n,
                         elements=st.integers(min_value=0, max_value=4)))
    split = draw(st.integers(min_value=0, max_value=n))
    return values, groups, split


@given(grouped_data(), st.sampled_from(STATE_TYPES))
@settings(max_examples=60, deadline=None)
def test_incremental_update_equals_batch(data, state_type):
    values, groups, split = data
    whole = state_type()
    whole.update(groups, values)
    pieces = state_type()
    pieces.update(groups[:split], values[:split])
    pieces.update(groups[split:], values[split:])
    np.testing.assert_allclose(
        pieces.finalize(), whole.finalize(), rtol=1e-8, atol=1e-6
    )


@given(grouped_data(), st.sampled_from(STATE_TYPES))
@settings(max_examples=60, deadline=None)
def test_merge_equals_single_state(data, state_type):
    values, groups, split = data
    left = state_type()
    right = state_type()
    left.update(groups[:split], values[:split])
    right.update(groups[split:], values[split:])
    left.merge(right)
    whole = state_type()
    whole.update(groups, values)
    np.testing.assert_allclose(
        left.finalize(), whole.finalize(), rtol=1e-8, atol=1e-6
    )


@given(grouped_data(), st.sampled_from(STATE_TYPES))
@settings(max_examples=40, deadline=None)
def test_merge_commutes(data, state_type):
    values, groups, split = data
    a1, b1 = state_type(), state_type()
    a1.update(groups[:split], values[:split])
    b1.update(groups[split:], values[split:])
    a2, b2 = state_type(), state_type()
    a2.update(groups[:split], values[:split])
    b2.update(groups[split:], values[split:])
    a1.merge(b1)
    b2.merge(a2)
    np.testing.assert_allclose(
        a1.finalize(), b2.finalize(), rtol=1e-8, atol=1e-6
    )


@given(grouped_data())
@settings(max_examples=40, deadline=None)
def test_copy_isolation(data):
    values, groups, _ = data
    state = AvgState()
    state.update(groups, values)
    before = state.finalize().copy()
    clone = state.copy()
    clone.update(groups, values + 1.0)
    np.testing.assert_array_equal(state.finalize(), before)


@given(values_strategy)
@settings(max_examples=40, deadline=None)
def test_unit_weights_match_unweighted(values):
    groups = np.zeros(len(values), dtype=np.int64)
    plain = SumState()
    plain.update(groups, values)
    weighted = SumState()
    weighted.update(groups, values, np.ones(len(values)))
    np.testing.assert_allclose(plain.finalize(), weighted.finalize())


@given(values_strategy, st.integers(min_value=2, max_value=8))
@settings(max_examples=30, deadline=None)
def test_trial_columns_independent(values, trials):
    """Each trial column equals a single-state run with those weights."""
    rng = np.random.default_rng(0)
    groups = np.zeros(len(values), dtype=np.int64)
    weights = rng.poisson(1.0, (len(values), trials)).astype(float)
    multi = AvgState(trials=trials)
    multi.update(groups, values, weights)
    combined = multi.finalize()
    for t in range(trials):
        single = AvgState()
        single.update(groups, values, weights[:, t])
        np.testing.assert_allclose(
            combined[0, t], single.finalize()[0], rtol=1e-8, atol=1e-8
        )


@given(values_strategy, st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_scale_semantics(values, scale):
    """SUM/COUNT scale linearly; AVG/STDEV are scale-invariant."""
    groups = np.zeros(len(values), dtype=np.int64)
    s, c, a, sd = SumState(), CountState(), AvgState(), StdevState()
    for state in (s, c, a, sd):
        state.update(groups, values)
    np.testing.assert_allclose(
        s.finalize(scale), s.finalize() * scale, rtol=1e-9
    )
    np.testing.assert_allclose(
        c.finalize(scale), c.finalize() * scale, rtol=1e-9
    )
    np.testing.assert_allclose(a.finalize(scale), a.finalize(), rtol=1e-12)
    np.testing.assert_allclose(sd.finalize(scale), sd.finalize(),
                               rtol=1e-12)
