"""Property test: plan rewrites are semantics-preserving.

Random predicate trees (including NOTs and nested boolean structure) are
evaluated on random data both raw and after constant folding + predicate
normalization — results must be identical row-for-row.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Comparison,
    Environment,
    Literal,
    evaluate_mask,
)
from repro.plan import fold_constants, normalize_predicate
from repro.storage import Table

N = 50
_RNG = np.random.default_rng(77)
_TABLE = Table.from_columns({
    "a": _RNG.uniform(-5, 5, N).round(2),
    "b": _RNG.uniform(-5, 5, N).round(2),
})


@st.composite
def numeric(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        if draw(st.booleans()):
            return Literal(draw(st.integers(-5, 5)))
        return ColumnRef(draw(st.sampled_from(["a", "b"])))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinaryOp(op, draw(numeric(depth=depth + 1)),
                    draw(numeric(depth=depth + 1)))


@st.composite
def predicate(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
        return Comparison(op, draw(numeric()), draw(numeric()))
    kind = draw(st.sampled_from(["AND", "OR", "NOT"]))
    if kind == "NOT":
        return BooleanOp("NOT", [draw(predicate(depth=depth + 1))])
    return BooleanOp(kind, [
        draw(predicate(depth=depth + 1)),
        draw(predicate(depth=depth + 1)),
    ])


@given(predicate())
@settings(max_examples=200, deadline=None)
def test_normalization_preserves_semantics(pred):
    raw = evaluate_mask(pred, _TABLE, Environment())
    rewritten = normalize_predicate(fold_constants(pred))
    out = evaluate_mask(rewritten, _TABLE, Environment())
    np.testing.assert_array_equal(raw, out)


@given(predicate())
@settings(max_examples=100, deadline=None)
def test_normalization_eliminates_not_over_comparisons(pred):
    """After normalization, NOT only wraps non-negatable leaves."""
    rewritten = normalize_predicate(fold_constants(pred))

    def check(node):
        if isinstance(node, BooleanOp) and node.op == "NOT":
            # Our grammar only produces comparisons/booleans, all of
            # which are negatable, so no NOT should survive.
            raise AssertionError(f"NOT survived: {node.sql()}")
        for child in node.children():
            check(child)

    check(rewritten)


@given(numeric())
@settings(max_examples=150, deadline=None)
def test_folding_preserves_values(expr):
    raw = np.broadcast_to(
        np.asarray(expr.evaluate(_TABLE, Environment()), dtype=float), (N,)
    )
    folded = fold_constants(expr)
    out = np.broadcast_to(
        np.asarray(folded.evaluate(_TABLE, Environment()), dtype=float),
        (N,),
    )
    np.testing.assert_allclose(raw, out, rtol=1e-12)


@given(numeric())
@settings(max_examples=100, deadline=None)
def test_folding_idempotent(expr):
    once = fold_constants(expr)
    twice = fold_constants(once)
    assert once.sql() == twice.sql()
