"""Property-based tests for colstore codecs and zone-map pruning.

Two invariants carry the whole subsystem:

* every codec round-trips **bit-exactly** (NaN payloads, signed zeros
  and empty arrays included) — the storage layer may never be a source
  of numeric drift;
* ``pruned_filter_mask`` equals ``evaluate_mask`` for any data layout,
  chunk size and comparison — pruning is an optimization, never an
  answer change.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    Environment,
    Literal,
    evaluate_mask,
)
from repro.storage import Table
from repro.storage.colstore.codecs import (
    CODECS,
    decode_column,
    encode_column,
)
from repro.storage.colstore.format import compute_zones
from repro.storage.colstore.prune import (
    ColumnZones,
    ZoneMapIndex,
    pruned_filter_mask,
)
from repro.storage.table import ColumnType

sizes = st.integers(min_value=0, max_value=300)

int_arrays = st.one_of(
    arrays(np.int64, sizes,
           elements=st.integers(min_value=-(2 ** 62), max_value=2 ** 62)),
    # low-cardinality / constant runs exercise dict and rle hard
    arrays(np.int64, sizes, elements=st.sampled_from([0, 1, 7])),
)

float_arrays = st.one_of(
    arrays(np.float64, sizes,
           elements=st.floats(allow_nan=True, allow_infinity=True,
                              width=64)),
    arrays(np.float64, sizes, elements=st.sampled_from(
        [0.0, -0.0, np.nan, np.inf, -np.inf, 1.5]
    )),
)

bool_arrays = arrays(np.bool_, sizes, elements=st.booleans())

string_values = st.one_of(
    st.sampled_from(["", "a", "cat", "käse", "x" * 40]),
    st.text(max_size=12),
)


@st.composite
def string_arrays(draw):
    n = draw(sizes)
    return np.array([draw(string_values) for _ in range(n)],
                    dtype=object)


def roundtrip(arr, ctype, codec):
    enc = encode_column(arr, ctype, codec)
    # The metadata crosses a JSON footer in real files; round-trip it
    # the same way so non-JSON-safe meta cannot hide here.
    meta = json.loads(json.dumps(enc.meta))
    return decode_column(enc.codec, enc.segments, meta, ctype, len(arr))


def assert_bit_equal(arr, out):
    assert out.dtype == arr.dtype
    if arr.dtype == object:
        assert out.tolist() == arr.tolist()
    else:
        np.testing.assert_array_equal(out.view(np.uint8),
                                      arr.view(np.uint8))


@given(int_arrays, st.sampled_from(("auto",) + CODECS))
@settings(max_examples=60, deadline=None)
def test_int64_round_trip(arr, codec):
    assert_bit_equal(arr, roundtrip(arr, ColumnType.INT64, codec))


@given(float_arrays, st.sampled_from(("auto", "plain", "dict", "rle")))
@settings(max_examples=60, deadline=None)
def test_float64_round_trip_bitexact(arr, codec):
    # NaN payloads and -0.0 must survive: compare raw bits, not values.
    assert_bit_equal(arr, roundtrip(arr, ColumnType.FLOAT64, codec))


@given(bool_arrays, st.sampled_from(("auto", "plain", "rle")))
@settings(max_examples=40, deadline=None)
def test_bool_round_trip(arr, codec):
    assert_bit_equal(arr, roundtrip(arr, ColumnType.BOOL, codec))


@given(string_arrays(), st.sampled_from(("auto", "dict", "rle")))
@settings(max_examples=40, deadline=None)
def test_string_round_trip(arr, codec):
    assert_bit_equal(arr, roundtrip(arr, ColumnType.STRING, codec))


# ---------------------------------------------------------------------------
# Pruning never changes a filter's row mask.
# ---------------------------------------------------------------------------

prune_values = arrays(
    np.float64, st.integers(min_value=1, max_value=400),
    elements=st.one_of(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.just(np.nan),
    ),
)


@st.composite
def prune_case(draw):
    values = draw(prune_values)
    if draw(st.booleans()):
        values = np.sort(values)  # clustered → prunable
    chunk_rows = draw(st.sampled_from([1, 7, 32, 64]))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    const = draw(st.one_of(
        st.floats(min_value=-120, max_value=120, allow_nan=False),
        st.sampled_from([0.0, 50.0, -50.0]),
    ))
    return values, chunk_rows, op, const


@given(prune_case())
@settings(max_examples=120, deadline=None)
def test_pruned_mask_equals_evaluate_mask(case):
    values, chunk_rows, op, const = case
    table = Table.from_columns({"v": values})
    zone_dicts = compute_zones(values, ColumnType.FLOAT64, chunk_rows)
    zones = ZoneMapIndex(
        chunk_rows=chunk_rows, num_rows=len(values),
        columns={"v": ColumnZones(
            ctype="float64",
            lows=[z["lo"] for z in zone_dicts],
            highs=[z["hi"] for z in zone_dicts],
            nulls=np.array([z["nulls"] for z in zone_dicts]),
            distinct=np.array([z["distinct"] for z in zone_dicts]),
        )},
    )
    predicate = Comparison(op, ColumnRef("v"), Literal(const))
    env = Environment()
    mask, pruned = pruned_filter_mask(predicate, table, env, zones)
    expected = np.asarray(evaluate_mask(predicate, table, env),
                          dtype=bool)
    np.testing.assert_array_equal(mask, expected)
    # a pruned chunk must have contributed no True rows
    assert 0 <= pruned <= zones.num_chunks
