"""Property-based tests: variation ranges and intervals."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.estimate import (
    VariationRange,
    percentile_interval,
    range_from_replicas,
    ranges_from_replica_matrix,
)

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)

replicas_strategy = arrays(
    np.float64, st.integers(min_value=2, max_value=60), elements=finite
)


@given(replicas_strategy, finite,
       st.floats(min_value=0.0, max_value=4.0))
@settings(max_examples=120, deadline=None)
def test_range_always_covers_inputs(replicas, estimate, eps):
    r = range_from_replicas(estimate, replicas, eps)
    assert r.contains(estimate)
    assert r.contains_all(replicas)


@given(replicas_strategy, finite)
@settings(max_examples=80, deadline=None)
def test_bigger_epsilon_is_wider(replicas, estimate):
    narrow = range_from_replicas(estimate, replicas, 0.5)
    wide = range_from_replicas(estimate, replicas, 2.0)
    assert wide.low <= narrow.low and wide.high >= narrow.high


@given(st.lists(st.tuples(finite, finite), min_size=1, max_size=8))
@settings(max_examples=80, deadline=None)
def test_intersection_is_contained_in_all(bounds):
    ranges = [VariationRange(min(a, b), max(a, b)) for a, b in bounds]
    out = ranges[0]
    for r in ranges[1:]:
        out = out.intersect(r)
    if all(out.overlaps(r) for r in ranges):
        for r in ranges:
            assert out.low >= r.low - 1e-9
            assert out.high <= r.high + 1e-9


@given(replicas_strategy)
@settings(max_examples=80, deadline=None)
def test_percentile_interval_ordered_and_within_hull(replicas):
    ci = percentile_interval(replicas, 0.9)
    assert ci.low <= ci.high
    assert ci.low >= replicas.min() - 1e-9
    assert ci.high <= replicas.max() + 1e-9


@given(
    arrays(np.float64, st.tuples(st.integers(1, 10), st.integers(2, 12)),
           elements=finite)
)
@settings(max_examples=80, deadline=None)
def test_matrix_ranges_cover_rowwise(matrix):
    estimates = matrix.mean(axis=1)
    lows, highs = ranges_from_replica_matrix(estimates, matrix, 1.0)
    assert (lows <= matrix.min(axis=1)).all()
    assert (highs >= matrix.max(axis=1)).all()
    assert (lows <= estimates).all() and (highs >= estimates).all()


@given(st.tuples(finite, finite), st.tuples(finite, finite))
@settings(max_examples=100, deadline=None)
def test_overlap_symmetry(a, b):
    ra = VariationRange(min(a), max(a))
    rb = VariationRange(min(b), max(b))
    assert ra.overlaps(rb) == rb.overlaps(ra)
