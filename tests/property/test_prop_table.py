"""Property-based tests: Table operation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.storage import MiniBatchPartitioner, Table

floats = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)


@st.composite
def table_strategy(draw):
    n = draw(st.integers(min_value=0, max_value=80))
    x = draw(arrays(np.float64, n, elements=floats))
    g = draw(arrays(np.int64, n,
                    elements=st.integers(min_value=0, max_value=5)))
    return Table.from_columns({"x": x, "g": g})


@given(table_strategy())
@settings(max_examples=80, deadline=None)
def test_take_concat_roundtrip(table):
    """Splitting by a mask and concatenating recovers a permutation."""
    if table.num_rows == 0:
        return
    mask = table.column("g") % 2 == 0
    combined = Table.concat([table.take(mask), table.take(~mask)])
    assert combined.num_rows == table.num_rows
    assert sorted(combined.column("x").tolist()) == \
        sorted(table.column("x").tolist())


@given(table_strategy())
@settings(max_examples=80, deadline=None)
def test_sort_is_ordered_permutation(table):
    out = table.sort_by(["x"])
    values = out.column("x")
    assert (np.diff(values) >= 0).all() if len(values) > 1 else True
    assert sorted(values.tolist()) == sorted(table.column("x").tolist())


@given(table_strategy())
@settings(max_examples=80, deadline=None)
def test_sort_descending_reverses(table):
    asc = table.sort_by(["x"]).column("x").tolist()
    desc = table.sort_by(["x"], [True]).column("x").tolist()
    assert desc == asc[::-1]


@given(table_strategy(), st.integers(min_value=1, max_value=10),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=80, deadline=None)
def test_partitioner_is_a_partition(table, k, seed):
    """Mini-batches form an exact partition of the rows, any k, any seed."""
    parts = MiniBatchPartitioner(k, seed=seed).partition(table)
    assert len(parts) == k
    sizes = [p.num_rows for p in parts]
    assert sum(sizes) == table.num_rows
    assert max(sizes) - min(sizes) <= 1 if sizes else True
    merged = sorted(
        v for p in parts for v in p.column("x").tolist()
    )
    assert merged == sorted(table.column("x").tolist())


@given(table_strategy())
@settings(max_examples=50, deadline=None)
def test_slices_tile_table(table):
    mid = table.num_rows // 2
    front = table.slice(0, mid)
    back = table.slice(mid, table.num_rows)
    assert front.num_rows + back.num_rows == table.num_rows
    if table.num_rows:
        recombined = Table.concat([front, back])
        np.testing.assert_array_equal(
            recombined.column("x"), table.column("x")
        )
