#!/usr/bin/env python
"""An interactive online-SQL console (the demo's web console, in a TTY).

Loads the synthetic Conviva-like trace plus the MyTube session log and
lets you type arbitrary aggregate SQL; every query executes online with
progressively refined answers.  Commands:

    \\tables          list registered tables and their schemas
    \\batch <sql>     run a query with the exact batch engine instead
    \\quit            exit

Usage:  python examples/sql_console.py [num_rows]
"""

import sys

from repro import GolaConfig, GolaSession, ReproError
from repro.frontends import render_snapshot
from repro.workloads import generate_conviva, generate_sessions


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    print(f"loading {num_rows:,} rows per table ...")
    session = GolaSession(
        GolaConfig(num_batches=10, bootstrap_trials=60, seed=1)
    )
    session.register_table("conviva", generate_conviva(num_rows, seed=1))
    session.register_table("sessions", generate_sessions(num_rows, seed=1))

    print("online SQL console — try:")
    print("  SELECT AVG(play_time) FROM sessions WHERE buffer_time >"
          " (SELECT AVG(buffer_time) FROM sessions)")
    print("type \\quit to exit\n")

    while True:
        try:
            line = input("gola> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            break
        if not line:
            continue
        if line in ("\\quit", "\\q", "exit", "quit"):
            break
        if line == "\\tables":
            for name in session.catalog.names():
                print(f"  {name}: {session.catalog.schema(name)}")
            continue
        batch_mode = line.startswith("\\batch")
        if batch_mode:
            line = line[len("\\batch"):].strip()
        try:
            if batch_mode:
                result = session.execute_batch(line)
                print(result.head_str())
                continue
            query = session.sql(line)
            for snapshot in query.run_online():
                print(render_snapshot(snapshot, max_rows=8))
                print()
        except ReproError as exc:
            print(f"error: {exc}")


if __name__ == "__main__":
    main()
