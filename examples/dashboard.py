#!/usr/bin/env python
"""The demo's dashboard (paper section 6): cycling online metric panels.

"The attendees will be able to interact with a web-based dashboard that
will compute and plot a number of ad popularity and user retention
metrics while cycling through various user groups and/or geographical
regions … the dashboard will feature approximate answers with error bars
that will get progressively refined with time."

This is the terminal rendition: a panel of metrics — each a nested
aggregate query over the Conviva-like trace — advances one mini-batch per
"tick", every metric shows its running value with an error bar, and the
whole board tightens as data streams in.

Usage:  python examples/dashboard.py [num_rows] [ticks]
"""

import sys

import numpy as np

from repro import GolaConfig, GolaSession
from repro.frontends import error_bar
from repro.workloads import generate_conviva

METRICS = {
    "slow-buffer retention (s)": """
        SELECT AVG(play_time) FROM conviva
        WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva)
    """,
    "slow-buffer failure rate": """
        SELECT AVG(join_failure) FROM conviva
        WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva)
    """,
    "content-relative stragglers": """
        SELECT COUNT(*) FROM conviva
        WHERE buffer_time > (SELECT 2.0 * AVG(buffer_time) FROM conviva c
                             WHERE c.content_id = conviva.content_id)
    """,
    "overall retention (s)": """
        SELECT AVG(play_time) FROM conviva
    """,
}


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    ticks = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    print(f"generating {num_rows:,} session rows ...\n")
    session = GolaSession(
        GolaConfig(num_batches=ticks, bootstrap_trials=60, seed=42)
    )
    session.register_table("conviva", generate_conviva(num_rows, seed=42))

    runs = {
        name: session.sql(sql).run_online() for name, sql in METRICS.items()
    }

    width = max(len(name) for name in METRICS)
    for tick in range(1, ticks + 1):
        print(f"--- dashboard tick {tick}/{ticks} "
              f"({tick * 100 // ticks}% of the stream) ---")
        for name, run in runs.items():
            snapshot = next(run)
            est = snapshot.estimate
            ci = snapshot.interval
            bar = error_bar(ci.low, est, ci.high, width=20)
            print(f"  {name:<{width}}  {est:>12,.3f}  {bar}  "
                  f"±{(ci.width / 2):,.3f}")
        print()
    print("stream fully processed; values are now exact.")


if __name__ == "__main__":
    main()
