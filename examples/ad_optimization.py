#!/usr/bin/env python
"""Real-time ad optimization (demo scenario 1, paper section 6.2).

MyTube wants to re-optimize ad placement every minute, not every day.
The analyst watches two online queries refine:

1. *over-performing ads per region* — impressions whose revenue beats
   twice the (running) average ad revenue, broken down by region; the
   threshold is an uncertain nested aggregate;
2. *off-peak click-through* — CTR of impressions served far from each
   ad's typical hour; the inner aggregate is correlated per ad.

Both stop as soon as the answers are accurate enough to act on.

Usage:  python examples/ad_optimization.py [num_rows]
"""

import sys

from repro import GolaConfig, GolaSession
from repro.frontends import render_snapshot
from repro.workloads import ADSTREAM_QUERIES, generate_adstream


def run_query(session: GolaSession, title: str, sql: str,
              stop_rel_stdev: float) -> None:
    print(f"=== {title} ===")
    query = session.sql(sql)
    for snapshot in query.run_online():
        print(render_snapshot(snapshot, max_rows=6))
        print()
        stoppable = True
        try:
            reached = snapshot.relative_stdev <= stop_rel_stdev
        except ValueError:
            # Grouped result: stop when every group's error is low.
            import numpy as np

            rel = [
                float(np.nanmax(err.rel_stdev))
                for err in snapshot.errors.values() if len(err.rel_stdev)
            ]
            reached = bool(rel) and max(rel) <= stop_rel_stdev
        if reached:
            print(f"accuracy target {stop_rel_stdev:.1%} reached after "
                  f"{snapshot.fraction:.0%} of the data -- acting on it\n")
            query.stop()


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 300_000
    print(f"generating {num_rows:,} ad impressions ...\n")
    impressions = generate_adstream(num_rows, seed=11)

    session = GolaSession(
        GolaConfig(num_batches=25, bootstrap_trials=80, seed=11)
    )
    session.register_table("adstream", impressions)

    run_query(session, "over-performing ads by region",
              ADSTREAM_QUERIES["overperformers"], stop_rel_stdev=0.05)
    run_query(session, "off-peak click-through rate",
              ADSTREAM_QUERIES["off_peak_ctr"], stop_rel_stdev=0.02)


if __name__ == "__main__":
    main()
