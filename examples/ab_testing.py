#!/usr/bin/env python
"""A/B testing (demo scenario 2, paper section 6.2).

MyTube experiments with a new ad-load policy: variant B shows fewer,
longer ads.  The experimenter wants to know — *now*, not after a full
scan — whether B retains slow-buffering users better than A.  Per
variant we run the non-monotonic SBI-style query

    AVG(play_time) of sessions with buffer_time above the variant's
    own average buffer_time

online, and watch the two confidence intervals separate.  As soon as
they no longer overlap the experimenter can call the test.

Usage:  python examples/ab_testing.py [rows_per_variant]
"""

import sys

import numpy as np

from repro import GolaConfig, GolaSession, Table
from repro.workloads import generate_sessions


def make_variants(rows_per_variant: int):
    """Variant A = control; variant B has milder buffering impact."""
    a = generate_sessions(rows_per_variant, seed=21, buffering_impact=0.8)
    b = generate_sessions(rows_per_variant, seed=22, buffering_impact=0.45)
    return a, b


QUERY = """
SELECT AVG(play_time) FROM {table}
WHERE buffer_time > (SELECT AVG(buffer_time) FROM {table})
"""


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    print(f"generating two variants of {rows:,} sessions each ...\n")
    variant_a, variant_b = make_variants(rows)

    session = GolaSession(
        GolaConfig(num_batches=20, bootstrap_trials=100, seed=5)
    )
    session.register_table("variant_a", variant_a)
    session.register_table("variant_b", variant_b)

    query_a = session.sql(QUERY.format(table="variant_a"))
    query_b = session.sql(QUERY.format(table="variant_b"))

    run_a = query_a.run_online()
    run_b = query_b.run_online()

    print(f"{'batch':>5}  {'A estimate':>22}  {'B estimate':>22}  verdict")
    for snap_a, snap_b in zip(run_a, run_b):
        ci_a, ci_b = snap_a.interval, snap_b.interval
        separated = ci_a.high < ci_b.low or ci_b.high < ci_a.low
        verdict = "separated!" if separated else "overlapping"
        print(
            f"{snap_a.batch_index:>5}  "
            f"{snap_a.estimate:>8.2f} {str(ci_a):>14}  "
            f"{snap_b.estimate:>8.2f} {str(ci_b):>14}  {verdict}"
        )
        if separated:
            better = "B" if snap_b.estimate > snap_a.estimate else "A"
            print(
                f"\nvariant {better} retains slow-buffering users better; "
                f"decided after {snap_a.fraction:.0%} of the data."
            )
            query_a.stop()
            query_b.stop()

    print("\nexact answers for the record:")
    for name, q in (("A", query_a), ("B", query_b)):
        exact = session.execute_batch(q)
        print(f"  variant {name}: "
              f"{float(exact.column(exact.schema.names[0])[0]):.2f}")


if __name__ == "__main__":
    main()
