#!/usr/bin/env python
"""Online TPC-H: run the paper's evaluation queries interactively.

Executes Q11 / Q17 / Q18 / Q20 (denormalized, de-selectivized — see
``repro.workloads.tpch``) with G-OLA and prints, per mini-batch, the
running answer, the uncertain-set size and the rows touched — then the
classical-delta-maintenance (CDM) cost for contrast.  This is the
at-a-glance version of the paper's Figure 3(b) story.

Usage:  python examples/tpch_online.py [query] [num_rows]
        query in {Q11, Q17, Q18, Q20}; default Q17
"""

import sys

from repro import GolaConfig, GolaSession
from repro.baselines import ClassicalDeltaMaintenance
from repro.workloads import TPCH_QUERIES, generate_tpch


def main() -> None:
    qname = sys.argv[1].upper() if len(sys.argv) > 1 else "Q17"
    num_rows = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    if qname not in TPCH_QUERIES:
        raise SystemExit(f"unknown query {qname}; pick from "
                         f"{sorted(TPCH_QUERIES)}")

    print(f"generating {num_rows:,} denormalized TPC-H rows ...")
    fact = generate_tpch(num_rows, seed=3)

    config = GolaConfig(num_batches=10, bootstrap_trials=60, seed=3)
    session = GolaSession(config)
    session.register_table("tpch", fact)
    query = session.sql(TPCH_QUERIES[qname])

    print(f"\n--- G-OLA online execution of {qname} ---")
    print(f"{'batch':>5} {'uncertain':>10} {'rows touched':>13}  answer")
    gola_rows = []
    for snap in query.run_online():
        gola_rows.append(snap.total_rows_processed)
        try:
            answer = f"{snap.estimate:,.2f} {snap.interval}"
        except ValueError:
            answer = f"{snap.table.num_rows} rows"
        print(f"{snap.batch_index:>5} {snap.total_uncertain:>10,} "
              f"{snap.total_rows_processed:>13,}  {answer}")

    print(f"\n--- classical delta maintenance (CDM) of {qname} ---")
    print(f"{'batch':>5} {'rows touched':>13} {'vs G-OLA':>9}")
    cdm = ClassicalDeltaMaintenance(
        query.query, {"tpch": fact}, config
    )
    for snap in cdm.run():
        ratio = snap.total_rows_processed / max(
            gola_rows[snap.batch_index - 1], 1
        )
        print(f"{snap.batch_index:>5} {snap.total_rows_processed:>13,} "
              f"{ratio:>8.1f}x")
    print("\nCDM re-reads the whole prefix every batch; G-OLA touches only "
          "the new mini-batch plus its (small) uncertain set.")


if __name__ == "__main__":
    main()
