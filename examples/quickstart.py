#!/usr/bin/env python
"""Quickstart: the paper's Slow Buffering Impact (SBI) query, online.

Runs Example 1 from the paper over a synthetic MyTube session log:

    SELECT AVG(play_time) FROM Sessions
    WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)

The query is non-monotonic — the inner AVG refines every mini-batch and
can flip which sessions qualify — which is exactly what G-OLA's delta
maintenance handles.  Watch the estimate and its error bar tighten, then
compare with the exact batch answer.

Usage:  python examples/quickstart.py [num_rows] [num_batches]
"""

import sys

from repro import GolaConfig, GolaSession
from repro.frontends import ProgressConsole
from repro.workloads import SBI_QUERY, generate_sessions


def main() -> None:
    num_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    num_batches = int(sys.argv[2]) if len(sys.argv) > 2 else 20

    print(f"generating {num_rows:,} session log rows ...")
    sessions = generate_sessions(num_rows, seed=7)

    session = GolaSession(
        GolaConfig(num_batches=num_batches, bootstrap_trials=100, seed=7)
    )
    session.register_table("sessions", sessions)

    query = session.sql(SBI_QUERY)
    print("meta query plan:")
    print(query.plan_description)
    print()

    console = ProgressConsole()
    target = 0.005  # stop at 0.5% relative standard deviation
    for snapshot in query.run_online():
        console.update(snapshot)
        if snapshot.relative_stdev <= target:
            print(f"reached {target:.1%} relative stdev -- stopping early, "
                  "the OLA way\n")
            query.stop()
    console.finish()

    exact = session.execute_batch(query)
    print("\nexact batch answer for comparison:")
    print(exact.head_str())


if __name__ == "__main__":
    main()
