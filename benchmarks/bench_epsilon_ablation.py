"""Section 3.2 ablation: the ε slack's recomputation/uncertainty trade.

The paper: "The user can decrease the chance of recomputation by setting
a larger ε (at the cost of increasing the size of the uncertain sets).
In practice, setting ε to the standard deviation of û achieves a good
balance."  We sweep ε over multiples of stdev(û) on the SBI query and
measure recomputations and uncertain-set sizes.
"""

import pytest

from repro import GolaConfig, GolaSession
from repro.workloads import SBI_QUERY, generate_sessions

EPSILONS = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
N_ROWS = 3000
NUM_BATCHES = 30


def sweep_point(epsilon):
    session = GolaSession(
        GolaConfig(num_batches=NUM_BATCHES, bootstrap_trials=24, seed=31,
                   epsilon_multiplier=epsilon)
    )
    session.register_table("sessions", generate_sessions(N_ROWS, seed=7))
    snapshots = list(session.sql(SBI_QUERY).run_online())
    rebuilds = sum(len(s.rebuilds) for s in snapshots)
    mean_uncertain = sum(s.total_uncertain for s in snapshots) / len(
        snapshots
    )
    return rebuilds, mean_uncertain, snapshots[-1].estimate


@pytest.fixture(scope="module")
def sweep():
    return {eps: sweep_point(eps) for eps in EPSILONS}


def test_epsilon_sweep_benchmark(benchmark):
    rebuilds, mean_uncertain, _ = benchmark.pedantic(
        sweep_point, args=(1.0,), rounds=1, iterations=1
    )
    assert mean_uncertain > 0


class TestEpsilonTrade:
    def test_uncertainty_monotone_in_epsilon(self, sweep):
        """Wider slack -> larger uncertain sets (weakly monotone)."""
        means = [sweep[eps][1] for eps in EPSILONS]
        assert means[0] < means[-1]
        # Allow small local non-monotonicity from rebuild resets.
        for a, b in zip(means, means[2:]):
            assert b >= 0.8 * a

    def test_rebuilds_vanish_at_large_epsilon(self, sweep):
        assert sweep[8.0][0] == 0

    def test_small_epsilon_risks_rebuilds(self, sweep):
        assert sweep[0.0][0] >= 1

    def test_default_epsilon_balances(self, sweep):
        """ε = 1·stdev: few rebuilds AND far-from-max uncertainty."""
        rebuilds, mean_uncertain, _ = sweep[1.0]
        assert rebuilds <= sweep[0.0][0]
        assert mean_uncertain < 0.6 * sweep[8.0][1]

    def test_answers_invariant(self, sweep):
        """ε is a performance knob, never a correctness knob."""
        estimates = {round(sweep[eps][2], 9) for eps in EPSILONS}
        assert len(estimates) == 1
