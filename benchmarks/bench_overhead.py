"""Section 5 claim: ~60% overhead of a full online pass vs batch.

The paper attributes G-OLA's extra cost over the batch engine "primarily
to the error estimation overheads".  We decompose it: the same online
run simulated with and without the bootstrap cost multiplier, against
the batch engine's single exact pass.
"""

import pytest

from common import (
    run_batch_rows,
    run_gola,
    simulate_batch_engine,
    simulate_latency,
)
from repro import GolaConfig
from repro.workloads import TPCH_QUERIES

CONFIG = GolaConfig(num_batches=10, bootstrap_trials=40, seed=2015)


@pytest.fixture(scope="module")
def overhead(small_tables):
    trace = run_gola(TPCH_QUERIES["Q17"], "tpch", small_tables, CONFIG)
    with_boot = simulate_latency(trace.per_batch_rows, bootstrap=True)
    without_boot = simulate_latency(trace.per_batch_rows, bootstrap=False)
    total_rows, num_blocks, _ = run_batch_rows(
        TPCH_QUERIES["Q17"], "tpch", small_tables
    )
    batch_seconds = simulate_batch_engine(total_rows, num_blocks)
    return trace, with_boot, without_boot, batch_seconds


def test_overhead_benchmark(benchmark, small_tables):
    trace = benchmark.pedantic(
        run_gola, args=(TPCH_QUERIES["Q17"], "tpch", small_tables, CONFIG),
        rounds=1, iterations=1,
    )
    assert trace.snapshots


class TestOverheadDecomposition:
    def test_bootstrap_adds_the_expected_factor(self, overhead):
        """Error estimation costs ~60% extra compute (the configured
        multiplier shows through the end-to-end latency)."""
        _, with_boot, without_boot, _ = overhead
        ratio = with_boot.total_seconds / without_boot.total_seconds
        assert 1.3 < ratio < 1.7

    def test_online_pass_costs_more_than_batch(self, overhead):
        """The full online pass is slower than one exact batch pass —
        the price of continuous feedback (paper: ~60%, ours similar
        order)."""
        _, with_boot, _, batch_seconds = overhead
        assert with_boot.total_seconds > batch_seconds

    def test_online_without_bootstrap_is_near_batch(self, overhead):
        """Without error estimation, mini-batch processing costs within
        ~2x of batch (delta maintenance itself is cheap)."""
        trace, _, without_boot, batch_seconds = overhead
        assert without_boot.total_seconds < 2.0 * batch_seconds

    def test_real_engine_reflects_bootstrap_cost(self, small_tables):
        """Wall-clock: more bootstrap trials cost more real time."""
        few = run_gola(
            TPCH_QUERIES["Q17"], "tpch", small_tables,
            CONFIG.with_options(bootstrap_trials=8),
        )
        many = run_gola(
            TPCH_QUERIES["Q17"], "tpch", small_tables,
            CONFIG.with_options(bootstrap_trials=200),
        )
        assert many.wall_seconds > few.wall_seconds
