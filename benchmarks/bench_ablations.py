"""Ablations of the design choices DESIGN.md marks with ♦.

* trial-aware uncertain-set evaluation (CI fidelity vs cost);
* poissonized vs classical multinomial bootstrap (replica agreement);
* decision-extreme guards vs the naive range-intersection fallback
  (rebuild counts — measured by forcing the fallback analysis off);
* cached-row cost-model sensitivity (does the Fig 3(b) conclusion
  survive charging cached rows at full price?).
"""

import numpy as np
import pytest

from common import ALL_QUERIES, run_cdm_rows, run_gola, simulate_latency
from repro import GolaConfig, GolaSession
from repro.estimate import multinomial_bootstrap, poissonized_bootstrap
from repro.workloads import SBI_QUERY, generate_sessions

CONFIG = GolaConfig(num_batches=10, bootstrap_trials=40, seed=2015)


# ----------------------------------------------------------------------
# Trial-aware uncertain evaluation
# ----------------------------------------------------------------------

def run_sbi(trial_aware, n=8000, batches=8):
    session = GolaSession(
        GolaConfig(num_batches=batches, bootstrap_trials=60, seed=5,
                   trial_aware_uncertain=trial_aware)
    )
    session.register_table("sessions", generate_sessions(n, seed=9))
    query = session.sql(SBI_QUERY)
    snaps = list(query.run_online())
    exact = session.execute_batch(query)
    return snaps, float(exact.column(exact.schema.names[0])[0])


@pytest.fixture(scope="module")
def trial_aware_runs():
    return run_sbi(True), run_sbi(False)


def test_trial_aware_benchmark(benchmark):
    snaps, _ = benchmark.pedantic(run_sbi, args=(True,),
                                  rounds=1, iterations=1)
    assert snaps


class TestTrialAwareAblation:
    def test_estimates_identical(self, trial_aware_runs):
        (on, _), (off, _) = trial_aware_runs
        for a, b in zip(on, off):
            assert a.estimate == pytest.approx(b.estimate, rel=1e-12)

    def test_intervals_change(self, trial_aware_runs):
        (on, _), (off, _) = trial_aware_runs
        assert any(
            abs(a.interval.width - b.interval.width) > 1e-12
            for a, b in zip(on[:-1], off[:-1])
        )

    def test_both_cover_truth_mostly(self, trial_aware_runs):
        for snaps, truth in trial_aware_runs:
            hits = sum(
                1 for s in snaps[:-1] if s.interval.contains(truth)
            )
            assert hits >= len(snaps) - 2


# ----------------------------------------------------------------------
# Poissonized vs multinomial bootstrap
# ----------------------------------------------------------------------

class TestBootstrapFlavours:
    def test_replica_distributions_agree(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(3.0, 3000)

        def weighted_mean(v, w):
            total = np.sum(w)
            return float(np.sum(v * w) / total) if total else 0.0

        poisson = poissonized_bootstrap(values, weighted_mean, 400, seed=1)
        multi = multinomial_bootstrap(values, np.mean, 400, seed=2)
        assert poisson.mean() == pytest.approx(multi.mean(), rel=0.01)
        assert poisson.std() == pytest.approx(multi.std(), rel=0.2)

    def test_poissonized_is_the_cheaper_online_choice(self, benchmark):
        """Per-batch poissonized maintenance is one vectorized update."""
        from repro.engine.aggregates import AvgState

        rng = np.random.default_rng(1)
        values = rng.normal(size=50_000)
        weights = rng.poisson(1.0, (50_000, 40)).astype(float)
        groups = np.zeros(50_000, dtype=np.int64)

        def fold():
            state = AvgState(trials=40)
            state.update(groups, values, weights)
            return state.finalize()

        out = benchmark(fold)
        assert out.shape == (1, 40)


# ----------------------------------------------------------------------
# Cost-model sensitivity: cached-row discount
# ----------------------------------------------------------------------

class TestCachedRowCostSensitivity:
    def test_fig3b_conclusion_survives_full_price(self, small_tables):
        """Even charging cached rows at 1.0x, CDM/G-OLA still grows and
        crosses 1 — the figure's conclusion is not a cost-model artifact."""
        table_name, sql = ALL_QUERIES["Q17"]
        trace = run_gola(sql, table_name, small_tables, CONFIG,
                         cached_row_cost_factor=1.0)
        gola = simulate_latency(trace.per_batch_rows).batch_seconds
        cdm = simulate_latency(
            run_cdm_rows(sql, table_name, small_tables, CONFIG),
            bootstrap=False,
        ).batch_seconds
        ratios = [c / g for c, g in zip(cdm, gola)]
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 1.5

    def test_discount_only_scales_latency(self, small_tables):
        table_name, sql = ALL_QUERIES["Q17"]
        cheap = run_gola(sql, table_name, small_tables, CONFIG,
                         cached_row_cost_factor=0.25)
        full = run_gola(sql, table_name, small_tables, CONFIG,
                        cached_row_cost_factor=1.0)
        # Same answers, same uncertain sets; only the charged rows move.
        assert cheap.uncertain_sizes == full.uncertain_sizes
        assert sum(sum(r.values()) for r in full.per_batch_rows) >= \
            sum(sum(r.values()) for r in cheap.per_batch_rows)
