"""Session-scoped benchmark fixtures: datasets generated once."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import make_tables  # noqa: E402


@pytest.fixture(scope="session")
def bench_tables():
    """100k-row TPC-H and Conviva fact tables (the paper's '100GB')."""
    return make_tables(100_000, seed=2015)


@pytest.fixture(scope="session")
def small_tables():
    """Smaller tables for the quadratic CDM executions."""
    return make_tables(30_000, seed=2015)
