"""Figure 3(a): relative standard deviation vs. query time, TPC-H Q17.

Paper's claims (100 GB, 1 GB mini-batches, 100 EC2 nodes):
  * a traditional batch engine answers only after 2.34 minutes;
  * G-OLA's first approximate answer lands at ~1.6% of that latency;
  * answers refine at a user-friendly ~2.5 s cadence;
  * stopping at 2% relative stdev is ~10x faster than batch execution;
  * a full online pass costs ~60% more than batch (error estimation).

We run Q17 online over the synthetic denormalized TPC-H table with 100
mini-batches, collect the per-batch error series from the real engine,
and obtain latencies from the cluster simulator at paper scale.  Shape
assertions encode the claims; absolute seconds are testbed artifacts.
"""

import pytest

from common import (
    run_batch_rows,
    run_gola,
    simulate_batch_engine,
    simulate_latency,
)
from repro import GolaConfig
from repro.workloads import TPCH_QUERIES

CONFIG = GolaConfig(num_batches=100, bootstrap_trials=60, seed=2015)


@pytest.fixture(scope="module")
def fig3a(bench_tables):
    trace = run_gola(TPCH_QUERIES["Q17"], "tpch", bench_tables, CONFIG)
    run = simulate_latency(trace.per_batch_rows)
    total_rows, num_blocks, _ = run_batch_rows(
        TPCH_QUERIES["Q17"], "tpch", bench_tables
    )
    batch_seconds = simulate_batch_engine(total_rows, num_blocks)
    return trace, run, batch_seconds


def test_fig3a_series(benchmark, bench_tables):
    """Benchmark the full online Q17 run (engine wall-clock)."""
    result = benchmark.pedantic(
        run_gola,
        args=(TPCH_QUERIES["Q17"], "tpch", bench_tables, CONFIG),
        rounds=1, iterations=1,
    )
    assert len(result.snapshots) == 100


class TestFig3aShape:
    def test_first_answer_is_early(self, fig3a):
        """First answer at a small fraction of batch latency (paper: 1.6%)."""
        _, run, batch_seconds = fig3a
        first = run.cumulative_seconds[0]
        assert first < 0.06 * batch_seconds

    def test_refinement_cadence_is_steady(self, fig3a):
        """Per-batch latency stays roughly constant (no CDM-style blowup)."""
        trace, run, _ = fig3a
        seconds = [
            s for i, s in enumerate(run.batch_seconds, start=1)
            if i not in trace.rebuild_batches
        ]
        tail = seconds[len(seconds) // 2:]
        head = seconds[: len(seconds) // 2]
        assert max(tail) < 4.0 * (sum(head) / len(head))

    def test_error_decreases_to_tight(self, fig3a):
        trace, _, _ = fig3a
        rsd = [s.relative_stdev for s in trace.snapshots]
        assert rsd[0] > rsd[-1]
        assert rsd[-1] < 0.02

    def test_stop_at_2pct_much_faster_than_batch(self, fig3a):
        """Paper: stopping at 2% rel stdev is ~10x faster than batch."""
        trace, run, batch_seconds = fig3a
        cumulative = run.cumulative_seconds
        for snapshot, elapsed in zip(trace.snapshots, cumulative):
            if snapshot.relative_stdev <= 0.02:
                # Paper reports ~10x on its testbed; our uncertain sets
                # are proportionally larger at laptop scale, landing at
                # ~3-5x — same direction, same order.
                assert elapsed < batch_seconds / 2.5
                return
        pytest.fail("2% relative stdev never reached")

    def test_full_pass_overhead_vs_batch(self, fig3a):
        """Paper: the complete online pass costs ~60% over batch.

        Ours lands somewhat higher (the uncertain-set re-evaluation is
        charged at full per-tuple cost), but stays the same order — far
        from the k-fold blowup of CDM.
        """
        _, run, batch_seconds = fig3a
        ratio = run.total_seconds / batch_seconds
        assert 1.1 < ratio < 3.0
