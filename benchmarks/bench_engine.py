"""Engine microbenchmarks (real wall-clock, pytest-benchmark).

Not a paper figure: these track the substrate's raw throughput so
regressions in the vectorized operators, the bootstrap update path and
the classifier show up independently of the end-to-end figures.

Standalone mode (no pytest)::

    PYTHONPATH=src python benchmarks/bench_engine.py --json BENCH_engine.json

benchmarks the bootstrap maintenance path — per-(batch, trial) weight
generation + trial-state folding — serial and at several ``--workers``
settings against a seed-faithful baseline (one sequential RNG stream
drawing the dense matrix + in-place ``np.add.at`` updates), asserts the
parallel results are bit-identical to serial, runs the TPC-H/SBI online
queries for per-query rows/sec and per-batch latency, and writes it all
to the ``--json`` path.  Exits non-zero when parallel output diverges
from serial (always), when workers=4 fails to beat serial wall-clock on
a host with >= 4 usable cores (always, including ``--smoke`` — on
smaller hosts the gate prints a loud warning and records the skip in
the JSON instead of silently passing), or when the workers=4 bootstrap
path fails the 2x throughput target vs the seed baseline (full runs
only).
"""

import numpy as np
import pytest

from repro.core import IntervalEnv, ScalarSlotState
from repro.core.classify import tri_eval
from repro.engine import BatchExecutor, hash_join
from repro.engine.aggregates import AvgState, SumState
from repro.estimate import VariationRange
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    Environment,
    SubqueryRef,
)
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table

N = 200_000


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(0)
    return {
        "values": rng.normal(10, 3, N),
        "groups": rng.integers(0, 64, N),
        "weights": rng.poisson(1.0, (N, 50)).astype(float),
    }


@pytest.fixture(scope="module")
def table(arrays):
    return Table.from_columns(
        {
            "k": arrays["groups"].astype(np.int64),
            "x": arrays["values"],
            "y": arrays["values"] * 2.0,
        }
    )


def test_exact_aggregate_update(benchmark, arrays):
    def run():
        state = AvgState()
        state.update(arrays["groups"], arrays["values"])
        return state.finalize()

    out = benchmark(run)
    assert out.shape == (64,)


def test_bootstrap_trial_update(benchmark, arrays):
    """The hot path: folding one batch into 50 per-trial states."""
    def run():
        state = SumState(trials=50)
        state.update(arrays["groups"], arrays["values"],
                     arrays["weights"])
        return state.finalize()

    out = benchmark(run)
    assert out.shape == (64, 50)


def test_filter_mask(benchmark, table):
    predicate = Comparison(">", ColumnRef("x"), ColumnRef("y"))

    def run():
        return table.take(
            np.asarray(predicate.evaluate(table, Environment()), dtype=bool)
        )

    out = benchmark(run)
    assert out.num_rows < N


def test_hash_join_throughput(benchmark, table):
    dim = Table.from_columns(
        {
            "k": np.arange(64, dtype=np.int64),
            "label": np.array([f"g{i}" for i in range(64)], dtype=object),
        }
    )
    out = benchmark(hash_join, table, dim, [("k", "k")])
    assert out.num_rows == N


def test_classifier_throughput(benchmark, table):
    state = ScalarSlotState(
        slot=0, estimate=10.0, replicas=np.array([9.5, 10.5]),
        vrange=VariationRange(9.0, 11.0),
    )
    env = IntervalEnv(slots={0: state},
                      point=Environment(scalars={0: 10.0}))
    predicate = Comparison(">", ColumnRef("x"), SubqueryRef(0))
    tri = benchmark(tri_eval, predicate, table, env)
    assert tri.shape == (N,)


def test_sql_group_by_executor(benchmark, table):
    cat = Catalog()
    cat.register("t", table)
    query = bind_statement(
        parse_sql("SELECT k, AVG(x) AS m, SUM(y) AS s FROM t GROUP BY k"),
        cat,
    )
    executor = BatchExecutor({"t": table})
    out = benchmark(executor.execute, query)
    assert out.num_rows == 64


def test_nested_query_executor(benchmark, table):
    cat = Catalog()
    cat.register("t", table)
    query = bind_statement(
        parse_sql(
            "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t)"
        ),
        cat,
    )
    executor = BatchExecutor({"t": table})
    out = benchmark(executor.execute, query)
    assert out.num_rows == 1


# ---------------------------------------------------------------------------
# Standalone bootstrap-path benchmark (python benchmarks/bench_engine.py)
# ---------------------------------------------------------------------------

def _tpch_fold_inputs(rows, seed):
    """Group indices and aggregate arguments from the TPC-H fact table."""
    from repro.engine.aggregates import GroupIndex
    from repro.workloads import generate_tpch

    table = generate_tpch(rows, seed=seed)
    index = GroupIndex()
    group_idx = index.encode(table.column("l_partkey"))
    values = {
        "sum_price": table.column("l_extendedprice").astype(np.float64),
        "avg_qty": table.column("l_quantity").astype(np.float64),
        "cnt": np.ones(table.num_rows),
    }
    return group_idx, values, index.num_groups


def _bench_baseline(group_idx, values, num_groups, trials, batches, seed):
    """The seed implementation of the bootstrap path, kept verbatim for
    comparison: one sequential RNG stream draws each batch's dense
    (n, B) matrix and the states update in place via np.add.at."""
    import time

    from repro.estimate.random_source import derive_rng

    n = len(group_idx)
    rng = derive_rng(seed, "bench-baseline")
    wsum = {a: np.zeros((num_groups, trials)) for a in ("sum_price", "avg_qty")}
    wcount = np.zeros((num_groups, trials))
    start = time.perf_counter()
    for _ in range(batches):
        weights = rng.poisson(1.0, size=(n, trials)).astype(np.float64)
        for alias in ("sum_price", "avg_qty"):
            np.add.at(wsum[alias], group_idx, values[alias][:, None] * weights)
        np.add.at(wcount, group_idx, weights)
    return time.perf_counter() - start


def _bench_gola_fold(group_idx, values, trials, batches, seed, workers,
                     backend="thread"):
    """The optimized path: lazy per-(batch, trial) weight handles folded
    through the ParallelExecutor (serial when workers == 0).

    Folds are dispatched ``lazy=True`` so batch *i+1*'s weight draw and
    shared-memory publish overlap batch *i*'s shard merge — the
    cross-batch pipelining the engine uses; ``drain()`` settles the last
    pending fold before the clock stops.
    """
    import time

    from repro.config import ParallelConfig
    from repro.engine.aggregates import AvgState, CountState, SumState
    from repro.estimate.bootstrap import PoissonWeightSource
    from repro.parallel import ParallelExecutor

    config = ParallelConfig(workers=workers, backend=backend) if workers \
        else ParallelConfig()
    executor = ParallelExecutor(config)
    states = {
        "sum_price": SumState(trials=trials),
        "avg_qty": AvgState(trials=trials),
        "cnt": CountState(trials=trials),
    }
    source = PoissonWeightSource(trials, seed, label="bench")
    start = time.perf_counter()
    try:
        for _ in range(batches):
            handle = source.batch_weights(len(group_idx))
            executor.fold_boot_states(states, group_idx, values, handle,
                                      lazy=True)
        executor.drain()
        elapsed = time.perf_counter() - start
    finally:
        executor.close()
    replicas = {a: s.finalize() for a, s in states.items()}
    return elapsed, replicas


def _bench_bootstrap_path(rows, trials, batches, workers_list, seed,
                          backend="thread"):
    group_idx, values, num_groups = _tpch_fold_inputs(rows, seed)
    total_rows = rows * batches
    baseline_s = _bench_baseline(
        group_idx, values, num_groups, trials, batches, seed
    )
    result = {
        "workload": "tpch",
        "rows": rows,
        "trials": trials,
        "batches": batches,
        "groups": num_groups,
        "baseline_seconds": round(baseline_s, 4),
        "baseline_rows_per_s": round(total_rows / baseline_s, 1),
        "backend": backend,
        "modes": [],
    }
    reference = None
    diverged = False
    for workers in workers_list:
        elapsed, replicas = _bench_gola_fold(
            group_idx, values, trials, batches, seed, workers,
            backend=backend,
        )
        if reference is None:
            reference = replicas
            identical = True
        else:
            identical = all(
                np.array_equal(reference[a], replicas[a]) for a in reference
            )
        diverged = diverged or not identical
        result["modes"].append({
            "mode": "serial" if workers == 0 else f"workers={workers}",
            "workers": workers,
            # What actually ran: serial folds use no pool at all, so the
            # effective pool size is 0 — recording it per mode keeps the
            # JSON honest on hosts with fewer cores than --workers.
            "backend": "serial" if workers == 0 else backend,
            "effective_pool_size": workers,
            "seconds": round(elapsed, 4),
            "rows_per_s": round(total_rows / elapsed, 1),
            "speedup_vs_baseline": round(baseline_s / elapsed, 3),
            "identical_to_serial": identical,
        })
    result["diverged"] = diverged
    return result


def _bench_queries(rows, trials, batches, workers, seed,
                   backend="thread"):
    """Per-query rows/sec and per-batch latency, serial vs parallel.

    Each query runs once serial and once with the given worker count;
    snapshots must be numerically identical between the two runs.
    """
    import time

    from repro import GolaConfig, GolaSession
    from repro.config import ParallelConfig
    from repro.workloads import (
        SBI_QUERY,
        TPCH_QUERIES,
        generate_sessions,
        generate_tpch,
    )

    jobs = [
        ("SBI", "sessions", generate_sessions(rows, seed=seed), SBI_QUERY),
        ("Q17", "tpch", generate_tpch(rows, seed=seed),
         TPCH_QUERIES["Q17"]),
    ]
    out = []
    for name, table_name, table, sql in jobs:
        runs = {}
        for label, parallel in (
            ("serial", ParallelConfig()),
            (f"workers={workers}",
             ParallelConfig(workers=workers, backend=backend)),
        ):
            session = GolaSession(
                GolaConfig(num_batches=batches, bootstrap_trials=trials,
                           seed=seed, parallel=parallel)
            )
            session.register_table(table_name, table)
            start = time.perf_counter()
            snaps = list(session.sql(sql).run_online())
            elapsed = time.perf_counter() - start
            runs[label] = (elapsed, snaps)
        (serial_s, serial_snaps), = [runs["serial"]]
        par_s, par_snaps = runs[f"workers={workers}"]
        identical = all(
            a.table.column(c).tobytes() == b.table.column(c).tobytes()
            for a, b in zip(serial_snaps, par_snaps)
            for c in a.table.schema.names
        )
        entry = {
            "query": name,
            "rows": table.num_rows,
            "batches": batches,
            "trials": trials,
            "identical": identical,
        }
        for label, (elapsed, snaps) in runs.items():
            batch_s = [round(s.elapsed_s, 6) for s in snaps]
            entry[label] = {
                "seconds": round(elapsed, 4),
                "rows_per_s": round(table.num_rows / elapsed, 1),
                "batch_seconds": batch_s,
                "mean_batch_s": round(float(np.mean(batch_s)), 6),
                "max_batch_s": round(float(np.max(batch_s)), 6),
            }
        out.append(entry)
    return out


def _bench_bootstrap_overhead(rows, trials, batches, seed):
    """Bootstrap error-estimation overhead: the same online query with
    full trials vs the 2-trial minimum (near-zero bootstrap work)."""
    import time

    from repro import GolaConfig, GolaSession
    from repro.workloads import SBI_QUERY, generate_sessions

    def run_with(n_trials):
        session = GolaSession(
            GolaConfig(num_batches=batches, bootstrap_trials=n_trials,
                       seed=seed)
        )
        session.register_table(
            "sessions", generate_sessions(rows, seed=seed)
        )
        start = time.perf_counter()
        list(session.sql(SBI_QUERY).run_online())
        return time.perf_counter() - start

    full_s = run_with(trials)
    minimal_s = run_with(2)
    return {
        "query": "SBI",
        "rows": rows,
        "trials": trials,
        "with_bootstrap_s": round(full_s, 4),
        "minimal_bootstrap_s": round(minimal_s, 4),
        "overhead_ratio": round(full_s / minimal_s, 3),
    }


def _bench_colstore_scan(rows, batches, seed, chunk_rows=2048):
    """Colstore scan mode: selective predicate over a clustered column.

    Converts a clustered table (sorted key, the layout zone maps are
    built for) once, then runs the same selective online query three
    ways: in-memory, colstore with pruning off, colstore with pruning
    on.  The pruning run must skip chunks (``colstore.chunks_pruned``
    > 0 — gated in main) and every stream must be bit-identical to the
    in-memory reference.
    """
    import tempfile
    import time
    from pathlib import Path

    from repro import GolaConfig, GolaSession, StorageConfig
    from repro.faults.chaos import snapshot_fingerprint
    from repro.obs import MetricsRegistry, Tracer
    from repro.storage.colstore import convert_table
    from repro.storage.table import Table

    rng = np.random.default_rng(seed)
    table = Table.from_columns({
        "ts": np.arange(rows, dtype=np.int64),  # clustered scan key
        "v": rng.normal(100.0, 12.0, rows),
        "grp": rng.integers(0, 16, rows).astype(np.int64),
    })
    cutoff = rows // 50  # ~2% of rows pass: most chunks are prunable
    sql = f"SELECT AVG(v) FROM events WHERE ts < {cutoff}"

    def config(prune):
        return GolaConfig(
            num_batches=batches, seed=seed, shuffle=False,
            storage=StorageConfig(prune=prune),
        )

    with tempfile.TemporaryDirectory() as tmp:
        ds_path = Path(tmp) / "events"
        start = time.perf_counter()
        dataset = convert_table(
            table, ds_path, num_batches=batches, seed=seed,
            shuffle=False, chunk_rows=chunk_rows,
        )
        convert_s = time.perf_counter() - start
        encoded = sum(p["bytes"] for p in dataset.manifest["partitions"])

        mem = GolaSession(config(True))
        mem.register_table("events", table)
        start = time.perf_counter()
        mem_fp = snapshot_fingerprint(mem.sql(sql).run_online())
        mem_s = time.perf_counter() - start

        modes = {}
        pruned_chunks = 0
        for prune in (False, True):
            tracer = Tracer(metrics=MetricsRegistry(enabled=True))
            session = GolaSession(config(prune), tracer=tracer)
            session.register_colstore("events", ds_path)
            start = time.perf_counter()
            fp = snapshot_fingerprint(session.sql(sql).run_online())
            elapsed = time.perf_counter() - start
            counters = tracer.metrics.snapshot().counters
            chunks = int(counters.get("colstore.chunks_pruned", 0))
            if prune:
                pruned_chunks = chunks
            modes["prune" if prune else "noprune"] = {
                "seconds": round(elapsed, 4),
                "rows_per_s": round(rows / elapsed, 1),
                "chunks_pruned": chunks,
                "identical_to_memory": fp == mem_fp,
            }
    total_chunks = batches * -(-rows // (batches * chunk_rows))
    return {
        "rows": rows,
        "batches": batches,
        "chunk_rows": chunk_rows,
        "query": sql,
        "convert_seconds": round(convert_s, 4),
        "encoded_bytes": encoded,
        "encoded_fraction": round(encoded / max(table.num_rows * 24, 1),
                                  4),
        "memory_seconds": round(mem_s, 4),
        "total_chunks": total_chunks,
        "chunks_pruned": pruned_chunks,
        "modes": modes,
    }


def _usable_cpus():
    """Cores this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; containers and cgroup CPU
    sets often allow far fewer.  Both numbers go in the JSON so a
    "workers=4" result on a 1-core host can't masquerade as a speedup
    measurement.
    """
    import os

    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


def main(argv=None):
    import argparse
    import json
    import os
    import sys

    parser = argparse.ArgumentParser(
        description="bootstrap-path + online-query benchmark"
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write results here (e.g. BENCH_engine.json)")
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--trials", type=int, default=96)
    parser.add_argument("--batches", type=int, default=4)
    parser.add_argument("--query-rows", type=int, default=40_000)
    parser.add_argument("--query-trials", type=int, default=32)
    parser.add_argument("--query-batches", type=int, default=8)
    parser.add_argument("--workers", type=int, nargs="*",
                        default=[0, 1, 2, 4],
                        help="worker counts for the fold benchmark "
                             "(0 = serial)")
    parser.add_argument("--target-speedup", type=float, default=2.0,
                        help="required workers=4 speedup vs the seed "
                             "baseline")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "process", "thread", "serial"),
                        help="shard-pool backend for the parallel modes; "
                             "'auto' picks process pools on multi-core "
                             "hosts and threads on single-core ones "
                             "(where process IPC is pure overhead). "
                             "Outputs are bit-identical either way.")
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes; skips the 2x-vs-baseline gate "
                             "but keeps the divergence and "
                             "workers-beat-serial gates (CI)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.rows = min(args.rows, 30_000)
        args.trials = min(args.trials, 24)
        args.batches = min(args.batches, 2)
        args.query_rows = min(args.query_rows, 8_000)
        args.query_trials = min(args.query_trials, 16)
        args.query_batches = min(args.query_batches, 4)

    backend = args.backend
    if backend == "auto":
        backend = "process" if (os.cpu_count() or 1) > 1 else "thread"

    print(f"bootstrap path: {args.rows:,} rows x {args.trials} trials "
          f"x {args.batches} batches, workers {args.workers}, "
          f"backend {backend}")
    boot = _bench_bootstrap_path(
        args.rows, args.trials, args.batches, args.workers, args.seed,
        backend=backend,
    )
    print(f"  baseline (seed impl):  {boot['baseline_seconds']:>8.3f}s  "
          f"{boot['baseline_rows_per_s']:>12,.0f} rows/s")
    for mode in boot["modes"]:
        print(f"  {mode['mode']:<22} {mode['seconds']:>8.3f}s  "
              f"{mode['rows_per_s']:>12,.0f} rows/s  "
              f"{mode['speedup_vs_baseline']:>5.2f}x  "
              f"identical={mode['identical_to_serial']}")

    print(f"online queries: {args.query_rows:,} rows x "
          f"{args.query_trials} trials x {args.query_batches} batches")
    queries = _bench_queries(
        args.query_rows, args.query_trials, args.query_batches,
        workers=4, seed=args.seed, backend=backend,
    )
    for entry in queries:
        for label in ("serial", "workers=4"):
            row = entry[label]
            print(f"  {entry['query']:<4} {label:<10} "
                  f"{row['seconds']:>8.3f}s  "
                  f"{row['rows_per_s']:>12,.0f} rows/s  "
                  f"mean batch {row['mean_batch_s'] * 1e3:8.1f} ms")
        print(f"  {entry['query']:<4} identical={entry['identical']}")

    overhead = _bench_bootstrap_overhead(
        args.query_rows, args.query_trials, args.query_batches, args.seed
    )
    print(f"bootstrap overhead (SBI, {overhead['trials']} trials vs 2): "
          f"{overhead['overhead_ratio']:.2f}x")

    print(f"colstore scan: {args.query_rows:,} clustered rows x "
          f"{args.query_batches} partitions, selective predicate")
    colstore = _bench_colstore_scan(
        args.query_rows, args.query_batches, args.seed,
    )
    for label in ("noprune", "prune"):
        mode = colstore["modes"][label]
        extra = (f"  pruned {mode['chunks_pruned']}"
                 f"/{colstore['total_chunks']} chunks"
                 if label == "prune" else "")
        print(f"  colstore {label:<8} {mode['seconds']:>8.3f}s  "
              f"{mode['rows_per_s']:>12,.0f} rows/s  "
              f"identical={mode['identical_to_memory']}{extra}")
    print(f"  in-memory          {colstore['memory_seconds']:>8.3f}s  "
          f"(convert {colstore['convert_seconds']:.3f}s, "
          f"{colstore['encoded_bytes']:,} encoded bytes)")

    usable = _usable_cpus()
    results = {
        "benchmark": "bench_engine",
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable,
        "bootstrap_path": boot,
        "queries": queries,
        "bootstrap_overhead": overhead,
        "colstore_scan": colstore,
    }

    failures = []
    if boot["diverged"]:
        failures.append("parallel fold diverged from serial")
    for entry in queries:
        if not entry["identical"]:
            failures.append(
                f"query {entry['query']} diverged under workers=4"
            )
    for label, mode in colstore["modes"].items():
        if not mode["identical_to_memory"]:
            failures.append(
                f"colstore {label} stream diverged from in-memory"
            )
    if colstore["chunks_pruned"] <= 0:
        failures.append(
            "colstore pruning skipped no chunks on a selective "
            "predicate over a clustered column"
        )

    # Workers-beat-serial gate: on a real multi-core host workers=4 must
    # be strictly faster than serial wall-clock (smoke included — CI
    # fails on regression, not just divergence).  On hosts with fewer
    # usable cores than that the comparison measures IPC overhead, not
    # parallelism, so the gate is skipped LOUDLY and the skip recorded.
    serial_mode = next(
        (m for m in boot["modes"] if m["workers"] == 0), None
    )
    four_mode = next(
        (m for m in boot["modes"] if m["workers"] == 4), None
    )
    workers_gate = {
        "gate": "workers=4 strictly faster than serial",
        "enforced": False,
        "passed": None,
    }
    if serial_mode is not None:
        workers_gate["serial_seconds"] = serial_mode["seconds"]
    if four_mode is not None:
        workers_gate["workers4_seconds"] = four_mode["seconds"]
    if serial_mode is None or four_mode is None:
        workers_gate["reason"] = \
            "serial or workers=4 mode not in --workers list"
    elif usable < 4:
        workers_gate["reason"] = (
            f"host has {usable} usable core(s), fewer than the 4 "
            f"workers benchmarked"
        )
        print(
            "=" * 72 + "\n"
            "WARNING: workers-beat-serial gate SKIPPED, not passed.\n"
            f"  This host exposes {usable} usable core(s) "
            f"(os.cpu_count()={os.cpu_count()}), fewer than the 4 "
            "workers benchmarked;\n"
            "  the parallel timings above measure dispatch/IPC overhead "
            "rather than\n"
            "  parallel speedup.  Re-run on a host with >= 4 usable "
            "cores to enforce\n"
            "  the gate.  The skip is recorded under \"workers_gate\" "
            "in the JSON.\n" + "=" * 72,
            file=sys.stderr,
        )
    else:
        workers_gate["enforced"] = True
        workers_gate["passed"] = \
            four_mode["seconds"] < serial_mode["seconds"]
        if not workers_gate["passed"]:
            failures.append(
                f"workers=4 ({four_mode['seconds']:.3f}s) not strictly "
                f"faster than serial ({serial_mode['seconds']:.3f}s) "
                f"on a {usable}-core host"
            )
    results["workers_gate"] = workers_gate

    if not args.smoke and four_mode is not None:
        gate = four_mode["speedup_vs_baseline"]
        if gate < args.target_speedup:
            failures.append(
                f"workers=4 speedup {gate:.2f}x < "
                f"{args.target_speedup:.1f}x target"
            )
    results["target_speedup"] = None if args.smoke else args.target_speedup
    results["failures"] = failures

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"results written to {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
