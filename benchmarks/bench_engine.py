"""Engine microbenchmarks (real wall-clock, pytest-benchmark).

Not a paper figure: these track the substrate's raw throughput so
regressions in the vectorized operators, the bootstrap update path and
the classifier show up independently of the end-to-end figures.
"""

import numpy as np
import pytest

from repro.core import IntervalEnv, ScalarSlotState
from repro.core.classify import tri_eval
from repro.engine import BatchExecutor, hash_join
from repro.engine.aggregates import AvgState, SumState
from repro.estimate import VariationRange
from repro.expr.expressions import (
    ColumnRef,
    Comparison,
    Environment,
    SubqueryRef,
)
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table

N = 200_000


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(0)
    return {
        "values": rng.normal(10, 3, N),
        "groups": rng.integers(0, 64, N),
        "weights": rng.poisson(1.0, (N, 50)).astype(float),
    }


@pytest.fixture(scope="module")
def table(arrays):
    return Table.from_columns(
        {
            "k": arrays["groups"].astype(np.int64),
            "x": arrays["values"],
            "y": arrays["values"] * 2.0,
        }
    )


def test_exact_aggregate_update(benchmark, arrays):
    def run():
        state = AvgState()
        state.update(arrays["groups"], arrays["values"])
        return state.finalize()

    out = benchmark(run)
    assert out.shape == (64,)


def test_bootstrap_trial_update(benchmark, arrays):
    """The hot path: folding one batch into 50 per-trial states."""
    def run():
        state = SumState(trials=50)
        state.update(arrays["groups"], arrays["values"],
                     arrays["weights"])
        return state.finalize()

    out = benchmark(run)
    assert out.shape == (64, 50)


def test_filter_mask(benchmark, table):
    predicate = Comparison(">", ColumnRef("x"), ColumnRef("y"))

    def run():
        return table.take(
            np.asarray(predicate.evaluate(table, Environment()), dtype=bool)
        )

    out = benchmark(run)
    assert out.num_rows < N


def test_hash_join_throughput(benchmark, table):
    dim = Table.from_columns(
        {
            "k": np.arange(64, dtype=np.int64),
            "label": np.array([f"g{i}" for i in range(64)], dtype=object),
        }
    )
    out = benchmark(hash_join, table, dim, [("k", "k")])
    assert out.num_rows == N


def test_classifier_throughput(benchmark, table):
    state = ScalarSlotState(
        slot=0, estimate=10.0, replicas=np.array([9.5, 10.5]),
        vrange=VariationRange(9.0, 11.0),
    )
    env = IntervalEnv(slots={0: state},
                      point=Environment(scalars={0: 10.0}))
    predicate = Comparison(">", ColumnRef("x"), SubqueryRef(0))
    tri = benchmark(tri_eval, predicate, table, env)
    assert tri.shape == (N,)


def test_sql_group_by_executor(benchmark, table):
    cat = Catalog()
    cat.register("t", table)
    query = bind_statement(
        parse_sql("SELECT k, AVG(x) AS m, SUM(y) AS s FROM t GROUP BY k"),
        cat,
    )
    executor = BatchExecutor({"t": table})
    out = benchmark(executor.execute, query)
    assert out.num_rows == 64


def test_nested_query_executor(benchmark, table):
    cat = Catalog()
    cat.register("t", table)
    query = bind_statement(
        parse_sql(
            "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t)"
        ),
        cat,
    )
    executor = BatchExecutor({"t": table})
    out = benchmark(executor.execute, query)
    assert out.num_rows == 1
