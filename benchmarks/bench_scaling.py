"""Scaling behaviour of the G-OLA per-batch bound (not a paper figure).

Empirical verification of the complexity claim behind Figure 3(b):
per-batch work is O(|ΔD_i| + |U_{i-1}|) —

* with the data size fixed, doubling k halves the per-batch row volume
  (until |U| dominates);
* with k fixed, per-batch work scales linearly in the data size;
* per-batch work does NOT scale with the batch index (CDM's failure
  mode), rebuild batches aside.
"""

import numpy as np
import pytest

from common import run_gola
from repro import GolaConfig
from repro.workloads import SBI_QUERY, generate_sessions


@pytest.fixture(scope="module")
def sessions_tables():
    return {
        20_000: {"sessions": generate_sessions(20_000, seed=3)},
        40_000: {"sessions": generate_sessions(40_000, seed=3)},
    }


def steady_rows(trace):
    """Mean rows/batch over non-rebuild batches in the second half."""
    rows = [
        sum(r.values()) for i, r in enumerate(trace.per_batch_rows, 1)
        if i not in trace.rebuild_batches
        and i > len(trace.per_batch_rows) // 2
    ]
    return float(np.mean(rows))


def test_scaling_benchmark(benchmark, sessions_tables):
    config = GolaConfig(num_batches=10, bootstrap_trials=30, seed=3)
    trace = benchmark.pedantic(
        run_gola,
        args=(SBI_QUERY, "sessions", sessions_tables[20_000], config),
        rounds=1, iterations=1,
    )
    assert trace.snapshots


class TestPerBatchBound:
    def test_more_batches_less_work_each(self, sessions_tables):
        tables = sessions_tables[20_000]
        coarse = run_gola(
            SBI_QUERY, "sessions", tables,
            GolaConfig(num_batches=5, bootstrap_trials=30, seed=3),
        )
        fine = run_gola(
            SBI_QUERY, "sessions", tables,
            GolaConfig(num_batches=20, bootstrap_trials=30, seed=3),
        )
        assert steady_rows(fine) < 0.6 * steady_rows(coarse)

    def test_work_linear_in_data_size(self, sessions_tables):
        config = GolaConfig(num_batches=10, bootstrap_trials=30, seed=3)
        small = run_gola(SBI_QUERY, "sessions",
                         sessions_tables[20_000], config)
        big = run_gola(SBI_QUERY, "sessions",
                       sessions_tables[40_000], config)
        ratio = steady_rows(big) / steady_rows(small)
        assert 1.5 < ratio < 2.6  # ~2x data -> ~2x per-batch rows

    def test_no_growth_with_batch_index(self, sessions_tables):
        trace = run_gola(
            SBI_QUERY, "sessions", sessions_tables[20_000],
            GolaConfig(num_batches=20, bootstrap_trials=30, seed=3),
        )
        rows = [
            sum(r.values())
            for i, r in enumerate(trace.per_batch_rows, 1)
            if i not in trace.rebuild_batches and i > 1
        ]
        # Late batches do at most modestly more work than early ones
        # (the uncertain set grows ~sqrt(i), never linearly).
        first_quarter = np.mean(rows[: len(rows) // 4])
        last_quarter = np.mean(rows[-(len(rows) // 4):])
        assert last_quarter < 1.5 * first_quarter
