"""Classical OLA vs G-OLA on the monotonic (SPJA) query class.

Section 7's positioning: on simple SPJA queries both systems apply —
classical OLA with CLT error bars, G-OLA with bootstrap.  Their
estimates must coincide (same running aggregates over the same batch
stream) and their intervals must agree in width order; on nested
queries only G-OLA survives.  Validates that G-OLA's generality costs
no statistical fidelity where the classical method applies.
"""

import pytest

from repro import GolaConfig, GolaSession, UnsupportedQueryError
from repro.baselines import ClassicalOLA
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog
from repro.workloads import generate_sessions

CONFIG = GolaConfig(num_batches=8, bootstrap_trials=80, seed=12)
SPJA = "SELECT AVG(play_time) AS m FROM sessions WHERE buffer_time < 60"
NESTED = ("SELECT AVG(play_time) AS m FROM sessions WHERE buffer_time > "
          "(SELECT AVG(buffer_time) FROM sessions)")


@pytest.fixture(scope="module")
def table():
    return generate_sessions(20_000, seed=6)


@pytest.fixture(scope="module")
def runs(table):
    session = GolaSession(CONFIG)
    session.register_table("sessions", table)
    gola = list(session.sql(SPJA).run_online())

    cat = Catalog()
    cat.register("sessions", table, streamed=True)
    query = bind_statement(parse_sql(SPJA), cat)
    ola = list(ClassicalOLA(query, {"sessions": table}, CONFIG).run())
    return gola, ola


def test_ola_comparison_benchmark(benchmark, table):
    cat = Catalog()
    cat.register("sessions", table, streamed=True)
    query = bind_statement(parse_sql(SPJA), cat)

    def run():
        return list(ClassicalOLA(query, {"sessions": table}, CONFIG).run())

    snaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(snaps) == CONFIG.num_batches


class TestSpjaAgreement:
    def test_point_estimates_identical(self, runs):
        gola, ola = runs
        for g, o in zip(gola, ola):
            assert g.estimate == pytest.approx(o.scalar()[0], rel=1e-9)

    def test_interval_widths_same_order(self, runs):
        """Bootstrap and CLT intervals agree within a factor ~2."""
        gola, ola = runs
        for g, o in zip(gola, ola):
            boot_width = g.interval.width
            _, lo, hi = o.scalar()
            clt_width = hi - lo
            if clt_width > 0:
                assert 0.4 < boot_width / clt_width < 2.5

    def test_both_tighten_over_batches(self, runs):
        gola, ola = runs
        assert gola[-1].interval.width < gola[0].interval.width
        first = ola[0].scalar()
        last = ola[-1].scalar()
        assert (last[2] - last[1]) < (first[2] - first[1])


class TestGeneralizationGap:
    def test_classical_ola_cannot_run_nested(self, table):
        cat = Catalog()
        cat.register("sessions", table, streamed=True)
        query = bind_statement(parse_sql(NESTED), cat)
        with pytest.raises(UnsupportedQueryError):
            ClassicalOLA(query, {"sessions": table}, CONFIG)

    def test_gola_runs_nested(self, table):
        session = GolaSession(CONFIG)
        session.register_table("sessions", table)
        last = session.sql(NESTED).run_to_completion()
        exact = session.execute_batch(NESTED)
        assert last.estimate == pytest.approx(
            float(exact.column("m")[0]), rel=1e-9
        )
