"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark drives the real engines (G-OLA, CDM, batch) over
laptop-scale synthetic workloads, records the *row volumes* each model
touches per mini-batch, and maps those volumes through the cluster
simulator at paper scale (``ROW_SCALE`` laptop rows -> simulated cluster
rows) to obtain latency series whose shape matches the paper's figures.

The two quantities reported per experiment:
  * real wall-clock of this process (engine microbenchmark), and
  * simulated cluster seconds (the figure axes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import ClusterConfig, GolaConfig, GolaSession
from repro.baselines import BatchBaseline, ClassicalDeltaMaintenance
from repro.cluster import ClusterSimulator, SimulatedRun
from repro.obs import JsonlSink, Timer, Tracer
from repro.plan import bind_statement
from repro.sql import parse_sql
from repro.storage import Catalog, Table
from repro.workloads import (
    CONVIVA_QUERIES,
    TPCH_QUERIES,
    generate_conviva,
    generate_tpch,
)

#: One laptop row stands for this many simulated cluster rows, mapping a
#: ~100k-row laptop run to the paper's ~100GB (billions of rows) setting.
ROW_SCALE = 50_000

#: The seven nested-aggregate queries of the paper's section 5.
ALL_QUERIES: Dict[str, Tuple[str, str]] = {
    **{name: ("conviva", sql) for name, sql in CONVIVA_QUERIES.items()},
    **{name: ("tpch", sql) for name, sql in TPCH_QUERIES.items()},
}


@dataclass
class GolaTrace:
    """Everything one G-OLA run yields for the benchmarks."""

    snapshots: list
    per_batch_rows: List[Dict[str, int]]
    uncertain_sizes: List[int]
    rebuild_batches: List[int]
    wall_seconds: float


def make_tables(num_rows: int, seed: int = 2015) -> Dict[str, Table]:
    """The benchmark datasets (generated once per session, cached)."""
    return {
        "tpch": generate_tpch(num_rows, seed=seed),
        "conviva": generate_conviva(num_rows, seed=seed),
    }


def run_gola(sql: str, table_name: str, tables: Dict[str, Table],
             config: GolaConfig,
             cached_row_cost_factor: float = 0.25,
             trace_out: Optional[str] = None) -> GolaTrace:
    """Run a query online and collect its execution trace.

    ``per_batch_rows`` carries *effective* row volumes for the cost
    model: cached uncertain tuples are re-evaluations over in-memory
    lineage and are charged at ``cached_row_cost_factor`` of a fresh
    tuple's cost (rebuild batches are charged in full).

    ``trace_out`` writes a JSONL span event log of the run (inspect with
    ``python -m repro report <path>``).
    """
    tracer = Tracer(JsonlSink(trace_out)) if trace_out else None
    session = GolaSession(config, tracer=tracer)
    session.register_table(table_name, tables[table_name])
    query = session.sql(sql)
    snapshots = []
    per_batch_rows = []
    prev_uncertain: Dict[str, int] = {}
    with Timer() as timer:
        for snapshot in query.run_online():
            snapshots.append(snapshot)
            effective = {}
            for block, rows in snapshot.rows_processed.items():
                cached = prev_uncertain.get(block, 0)
                if block in snapshot.rebuilds or cached > rows:
                    effective[block] = rows
                else:
                    effective[block] = int(
                        rows - cached + cached_row_cost_factor * cached
                    )
            per_batch_rows.append(effective)
            prev_uncertain = dict(snapshot.uncertain_sizes)
    wall = timer.elapsed_s
    if tracer is not None:
        tracer.close()
    return GolaTrace(
        snapshots=snapshots,
        per_batch_rows=per_batch_rows,
        uncertain_sizes=[s.total_uncertain for s in snapshots],
        rebuild_batches=[s.batch_index for s in snapshots if s.rebuilds],
        wall_seconds=wall,
    )


def run_cdm_rows(sql: str, table_name: str, tables: Dict[str, Table],
                 config: GolaConfig,
                 execute: bool = True) -> List[Dict[str, int]]:
    """Per-batch row volumes for classical delta maintenance.

    With ``execute=False`` only the (deterministic) row accounting is
    produced without actually recomputing every prefix — Fig 3(b)'s CDM
    cost model is exact either way, and skipping execution keeps the
    benchmark suite fast at large k.
    """
    cat = Catalog()
    cat.register(table_name, tables[table_name], streamed=True)
    query = bind_statement(parse_sql(sql), cat)
    if execute:
        cdm = ClassicalDeltaMaintenance(
            query, {table_name: tables[table_name]}, config
        )
        return [dict(s.rows_processed) for s in cdm.run()]
    # Analytic accounting: identical formula to CdmSnapshot.
    cdm = ClassicalDeltaMaintenance(
        query, {table_name: tables[table_name]}, config
    )
    total = tables[table_name].num_rows
    from repro.storage import batch_sizes

    sizes = batch_sizes(total, config.num_batches)
    out = []
    prefix = 0
    for size in sizes:
        prefix += size
        rows = {}
        for block_id in cdm._incremental_blocks:
            rows[block_id] = size
        for block_id in cdm._recomputing_blocks:
            rows[block_id] = prefix
        out.append(rows)
    return out


def run_batch_rows(sql: str, table_name: str,
                   tables: Dict[str, Table]) -> Tuple[int, int, float]:
    """(rows_processed, num_blocks, wall_seconds) for the batch engine."""
    cat = Catalog()
    cat.register(table_name, tables[table_name], streamed=True)
    query = bind_statement(parse_sql(sql), cat)
    baseline = BatchBaseline({table_name: tables[table_name]})
    result = baseline.run(query)
    num_blocks = len(query.subqueries) + 1
    return result.rows_processed, num_blocks, result.elapsed_s


def simulate_latency(per_batch_rows: List[Dict[str, int]],
                     row_scale: int = ROW_SCALE,
                     bootstrap: bool = True,
                     cluster: Optional[ClusterConfig] = None) -> SimulatedRun:
    """Map per-batch row volumes to simulated cluster latencies."""
    sim = ClusterSimulator(cluster or ClusterConfig())
    scaled = [
        {block: rows * row_scale for block, rows in batch.items()}
        for batch in per_batch_rows
    ]
    return sim.simulate_run(scaled, bootstrap=bootstrap)


def simulate_batch_engine(total_rows: int, num_blocks: int,
                          row_scale: int = ROW_SCALE,
                          cluster: Optional[ClusterConfig] = None) -> float:
    sim = ClusterSimulator(cluster or ClusterConfig())
    return sim.simulate_batch_engine(total_rows * row_scale, num_blocks)


def format_series(header: str, rows: List[Tuple]) -> str:
    """Simple aligned text table for harness output."""
    lines = [header]
    for row in rows:
        lines.append("  ".join(
            f"{v:>12.4g}" if isinstance(v, float) else f"{v:>12}"
            for v in row
        ))
    return "\n".join(lines)
