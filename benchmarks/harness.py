#!/usr/bin/env python
"""Regenerate every figure/claim of the paper's evaluation as text series.

Usage:
    python benchmarks/harness.py --all
    python benchmarks/harness.py fig3a fig3b uncertain epsilon overhead \
        convergence
    python benchmarks/harness.py --all --json harness.json

Each experiment prints the series the paper plots (and the claims around
them), using the real engines for execution traces and the cluster
simulator for latencies.  Output is what EXPERIMENTS.md records; with
``--json`` the same series are also written as one machine-readable
document (keyed by experiment name).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from common import (
    ALL_QUERIES,
    ROW_SCALE,
    make_tables,
    run_batch_rows,
    run_cdm_rows,
    run_gola,
    simulate_batch_engine,
    simulate_latency,
)
from repro import GolaConfig, GolaSession
from repro.workloads import SBI_QUERY, TPCH_QUERIES, generate_sessions

#: Set by --trace-dir; experiments then write one JSONL event log per
#: G-OLA run (inspect with ``python -m repro report <file>``).
TRACE_DIR = None


def trace_path(label: str) -> str:
    """The JSONL trace file for one run, or None when tracing is off."""
    if TRACE_DIR is None:
        return None
    TRACE_DIR.mkdir(parents=True, exist_ok=True)
    return str(TRACE_DIR / f"{label}.jsonl")


def fig3a() -> dict:
    print("=" * 72)
    print("Figure 3(a): relative stdev vs query time, TPC-H Q17, k=100")
    print("=" * 72)
    tables = make_tables(100_000, seed=2015)
    config = GolaConfig(num_batches=100, bootstrap_trials=60, seed=2015)
    trace = run_gola(TPCH_QUERIES["Q17"], "tpch", tables, config,
                     trace_out=trace_path("fig3a_q17"))
    run = simulate_latency(trace.per_batch_rows)
    total_rows, num_blocks, _ = run_batch_rows(
        TPCH_QUERIES["Q17"], "tpch", tables
    )
    batch_seconds = simulate_batch_engine(total_rows, num_blocks)
    cumulative = run.cumulative_seconds
    rsd = [s.relative_stdev for s in trace.snapshots]

    print(f"{'batch':>6} {'time (s)':>10} {'rel stdev':>10}")
    shown = list(range(10)) + list(range(19, 100, 10))
    for i in shown:
        print(f"{i + 1:>6} {cumulative[i]:>10.1f} {rsd[i]:>9.2%}")
    print(f"\nbatch-engine latency (vertical bar): {batch_seconds:.1f} s")
    print(f"first answer: {cumulative[0]:.1f} s "
          f"({cumulative[0] / batch_seconds:.1%} of batch; paper: 1.6%)")
    cadence = np.mean(np.diff(cumulative[: 20]))
    print(f"refinement cadence: {cadence:.1f} s/batch (paper: ~2.5 s)")
    idx = next((i for i, r in enumerate(rsd) if r <= 0.02), None)
    if idx is not None:
        print(f"2% rel stdev reached at batch {idx + 1}, "
              f"{cumulative[idx]:.1f} s -> "
              f"{batch_seconds / cumulative[idx]:.1f}x faster than batch "
              "(paper: ~10x)")
    print(f"full online pass: {run.total_seconds:.1f} s = "
          f"{run.total_seconds / batch_seconds:.2f}x batch "
          "(paper: ~1.6x)")
    print(f"rebuild batches: {trace.rebuild_batches or 'none'}")
    print(f"engine wall-clock (this process): {trace.wall_seconds:.2f} s\n")
    return {
        "query": "Q17",
        "cumulative_seconds": [round(float(s), 3) for s in cumulative],
        "relative_stdev": [round(float(r), 6) for r in rsd],
        "batch_engine_seconds": round(float(batch_seconds), 3),
        "first_answer_seconds": round(float(cumulative[0]), 3),
        "refinement_cadence_s": round(float(cadence), 3),
        "rebuild_batches": list(trace.rebuild_batches),
        "wall_seconds": round(trace.wall_seconds, 3),
    }


def fig3b() -> dict:
    print("=" * 72)
    print("Figure 3(b): CDM / G-OLA per-batch time ratio, first 10 batches")
    print("=" * 72)
    tables = make_tables(30_000, seed=2015)
    config = GolaConfig(num_batches=10, bootstrap_trials=40, seed=2015)
    names = sorted(ALL_QUERIES)
    ratios = {}
    for name in names:
        table_name, sql = ALL_QUERIES[name]
        trace = run_gola(sql, table_name, tables, config,
                         trace_out=trace_path(f"fig3b_{name}"))
        gola = simulate_latency(trace.per_batch_rows).batch_seconds
        cdm = simulate_latency(
            run_cdm_rows(sql, table_name, tables, config), bootstrap=False
        ).batch_seconds
        ratios[name] = [c / g for c, g in zip(cdm, gola)]
    header = f"{'batch':>6}" + "".join(f"{n:>8}" for n in names)
    print(header)
    for i in range(10):
        row = f"{i + 1:>6}" + "".join(
            f"{ratios[n][i]:>8.2f}" for n in names
        )
        print(row)
    print("\nratio grows with the batch index for every query (paper: "
          "\"grows linearly with the number of iterations\")\n")
    return {
        "cdm_over_gola_ratio": {
            name: [round(float(r), 4) for r in series[:10]]
            for name, series in ratios.items()
        },
    }


def uncertain() -> dict:
    print("=" * 72)
    print("Section 3.2: uncertain-set sizes per batch (k=10, 30k rows)")
    print("=" * 72)
    tables = make_tables(30_000, seed=2015)
    config = GolaConfig(num_batches=10, bootstrap_trials=40, seed=2015)
    names = sorted(ALL_QUERIES)
    sizes = {}
    for name in names:
        table_name, sql = ALL_QUERIES[name]
        sizes[name] = run_gola(
            sql, table_name, tables, config,
            trace_out=trace_path(f"uncertain_{name}"),
        ).uncertain_sizes
    print(f"{'batch':>6}" + "".join(f"{n:>8}" for n in names))
    for i in range(10):
        print(f"{i + 1:>6}" + "".join(
            f"{sizes[n][i]:>8}" for n in names
        ))
    print("\n(fractions of the 30,000-row dataset; the paper claims the "
          "uncertain sets are 'very small in practice')\n")
    return {
        "rows": 30_000,
        "uncertain_sizes": {
            name: [int(s) for s in series] for name, series in sizes.items()
        },
    }


def epsilon() -> dict:
    print("=" * 72)
    print("Section 3.2 ablation: epsilon sweep on SBI (k=30, 3k rows)")
    print("=" * 72)
    print(f"{'epsilon':>8} {'rebuilds':>9} {'mean |U|':>9} "
          f"{'final estimate':>15}")
    rows = []
    for eps in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        session = GolaSession(
            GolaConfig(num_batches=30, bootstrap_trials=24, seed=31,
                       epsilon_multiplier=eps)
        )
        session.register_table(
            "sessions", generate_sessions(3000, seed=7)
        )
        snaps = list(session.sql(SBI_QUERY).run_online())
        rebuilds = sum(len(s.rebuilds) for s in snaps)
        mean_u = sum(s.total_uncertain for s in snaps) / len(snaps)
        print(f"{eps:>8.2f} {rebuilds:>9} {mean_u:>9.1f} "
              f"{snaps[-1].estimate:>15.4f}")
        rows.append({
            "epsilon": eps,
            "rebuilds": rebuilds,
            "mean_uncertain": round(mean_u, 2),
            "final_estimate": round(float(snaps[-1].estimate), 6),
        })
    print("\nsmaller epsilon -> recomputation risk; larger epsilon -> "
          "bigger uncertain sets; answers identical (paper: epsilon = "
          "stdev balances the two)\n")
    return {"sweep": rows}


def overhead() -> dict:
    print("=" * 72)
    print("Section 5: error-estimation overhead decomposition (Q17, k=10)")
    print("=" * 72)
    tables = make_tables(30_000, seed=2015)
    config = GolaConfig(num_batches=10, bootstrap_trials=40, seed=2015)
    trace = run_gola(TPCH_QUERIES["Q17"], "tpch", tables, config,
                     trace_out=trace_path("overhead_q17"))
    with_boot = simulate_latency(trace.per_batch_rows, bootstrap=True)
    without = simulate_latency(trace.per_batch_rows, bootstrap=False)
    total_rows, num_blocks, _ = run_batch_rows(
        TPCH_QUERIES["Q17"], "tpch", tables
    )
    batch_seconds = simulate_batch_engine(total_rows, num_blocks)
    print(f"batch engine (exact, one pass):   {batch_seconds:>8.1f} s")
    print(f"online, no error estimation:      "
          f"{without.total_seconds:>8.1f} s "
          f"({without.total_seconds / batch_seconds:.2f}x)")
    print(f"online, poissonized bootstrap:    "
          f"{with_boot.total_seconds:>8.1f} s "
          f"({with_boot.total_seconds / batch_seconds:.2f}x; paper ~1.6x)")
    print()
    return {
        "query": "Q17",
        "batch_engine_seconds": round(float(batch_seconds), 3),
        "online_seconds": round(float(without.total_seconds), 3),
        "online_bootstrap_seconds": round(float(with_boot.total_seconds), 3),
        "bootstrap_overhead_ratio": round(
            float(with_boot.total_seconds / without.total_seconds), 4
        ),
    }


def convergence() -> dict:
    print("=" * 72)
    print("Section 2.2: estimator convergence & CI coverage (SBI, 10 seeds)")
    print("=" * 72)
    hits = total = 0
    first_errors = []
    last_errors = []
    for seed in range(10):
        session = GolaSession(
            GolaConfig(num_batches=6, bootstrap_trials=60, seed=seed)
        )
        session.register_table(
            "sessions", generate_sessions(6000, seed=99)
        )
        query = session.sql(SBI_QUERY)
        snaps = list(query.run_online())
        exact = session.execute_batch(query)
        truth = float(exact.column(exact.schema.names[0])[0])
        for snap in snaps[:-1]:
            total += 1
            hits += snap.interval.contains(truth)
        first_errors.append(abs(snaps[0].estimate - truth))
        last_errors.append(abs(snaps[-2].estimate - truth))
    print(f"95% CI coverage over {total} snapshots: {hits / total:.1%}")
    print(f"mean |error|, first batch:  {np.mean(first_errors):.3f}")
    print(f"mean |error|, batch k-1:    {np.mean(last_errors):.3f}")
    print("final snapshots equal the exact answers by construction\n")
    return {
        "snapshots": total,
        "ci_coverage": round(hits / total, 4),
        "mean_error_first_batch": round(float(np.mean(first_errors)), 4),
        "mean_error_last_batch": round(float(np.mean(last_errors)), 4),
    }


EXPERIMENTS = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "uncertain": uncertain,
    "epsilon": epsilon,
    "overhead": overhead,
    "convergence": convergence,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="which experiments to run")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write one JSONL trace per G-OLA run here")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write every experiment's series as one "
                             "JSON document")
    args = parser.parse_args()
    if args.trace_dir:
        global TRACE_DIR
        TRACE_DIR = Path(args.trace_dir)
    names = list(EXPERIMENTS) if args.all or not args.experiments \
        else args.experiments
    print(f"(laptop rows -> simulated cluster rows scale: {ROW_SCALE:,})\n")
    results = {}
    for name in names:
        results[name] = EXPERIMENTS[name]()
    if args.json:
        import json

        document = {
            "benchmark": "harness",
            "row_scale": ROW_SCALE,
            "experiments": results,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(f"results written to {args.json}")


if __name__ == "__main__":
    main()
