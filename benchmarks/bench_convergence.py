"""Section 2.2 semantics: unbiased estimates and honest error bars.

Statistical validation of the execution model over many seeds: the
running estimate Q(D_i, k/i) centers on the ground truth, its bootstrap
confidence intervals cover the truth at close to the nominal rate, and
the error decays as more batches fold in.
"""

import numpy as np
import pytest

from repro import GolaConfig, GolaSession
from repro.workloads import SBI_QUERY, generate_sessions

N_ROWS = 6000
SEEDS = list(range(10))


def coverage_run(seed, num_batches=6, confidence=0.95):
    session = GolaSession(
        GolaConfig(num_batches=num_batches, bootstrap_trials=60,
                   seed=seed, confidence=confidence)
    )
    session.register_table("sessions", generate_sessions(N_ROWS, seed=99))
    query = session.sql(SBI_QUERY)
    snapshots = list(query.run_online())
    exact = session.execute_batch(query)
    truth = float(exact.column(exact.schema.names[0])[0])
    return snapshots, truth


@pytest.fixture(scope="module")
def runs():
    return [coverage_run(seed) for seed in SEEDS]


def test_convergence_benchmark(benchmark):
    snapshots, truth = benchmark.pedantic(
        coverage_run, args=(0,), rounds=1, iterations=1
    )
    assert snapshots[-1].estimate == pytest.approx(truth, rel=1e-9)


class TestStatisticalValidity:
    def test_coverage_close_to_nominal(self, runs):
        hits = total = 0
        for snapshots, truth in runs:
            for snapshot in snapshots[:-1]:
                total += 1
                hits += snapshot.interval.contains(truth)
        coverage = hits / total
        assert coverage >= 0.82, f"coverage {coverage:.2%} too low"

    def test_first_batch_estimates_unbiased(self, runs):
        """Across partitionings, early estimates center on the truth."""
        firsts = np.array([s[0][0].estimate for s in runs])
        truth = runs[0][1]
        spread = firsts.std(ddof=1)
        assert abs(firsts.mean() - truth) < 3.0 * spread / np.sqrt(
            len(firsts)
        ) + 1e-9

    def test_error_decays(self, runs):
        """Mean |error| at the last refinement < at the first."""
        first_err = np.mean(
            [abs(snapshots[0].estimate - truth)
             for snapshots, truth in runs]
        )
        last_err = np.mean(
            [abs(snapshots[-2].estimate - truth)
             for snapshots, truth in runs]
        )
        assert last_err < first_err

    def test_interval_widths_shrink(self, runs):
        for snapshots, _ in runs:
            widths = [s.interval.width for s in snapshots]
            assert widths[-1] <= widths[0]

    def test_final_is_exact_for_all_seeds(self, runs):
        for snapshots, truth in runs:
            assert snapshots[-1].estimate == pytest.approx(truth, rel=1e-9)
