"""Figure 3(b): CDM / G-OLA per-batch query-time ratio, first 10 batches.

Paper's claims for queries C1, C2, C3 (Conviva) and Q11, Q17, Q18, Q20
(TPC-H), 1 GB mini-batches:
  * in classical delta maintenance every inner-aggregate refinement
    forces recomputation over all previously processed data, so the
    per-batch time — and hence the CDM/G-OLA ratio — grows roughly
    linearly with the batch index;
  * G-OLA bounds per-batch work by the new batch plus the (small)
    uncertain set, achieving almost constant per-iteration time.

Both engines really execute here; latencies come from the cluster
simulator over their measured per-batch row volumes.
"""

import pytest

from common import ALL_QUERIES, run_cdm_rows, run_gola, simulate_latency
from repro import GolaConfig

CONFIG = GolaConfig(num_batches=10, bootstrap_trials=40, seed=2015)
QUERY_NAMES = sorted(ALL_QUERIES)


@pytest.fixture(scope="module")
def fig3b(small_tables):
    """(gola_batch_seconds, cdm_batch_seconds) per query."""
    results = {}
    for name in QUERY_NAMES:
        table_name, sql = ALL_QUERIES[name]
        trace = run_gola(sql, table_name, small_tables, CONFIG)
        gola_run = simulate_latency(trace.per_batch_rows)
        cdm_rows = run_cdm_rows(sql, table_name, small_tables, CONFIG)
        cdm_run = simulate_latency(cdm_rows, bootstrap=False)
        results[name] = (gola_run.batch_seconds, cdm_run.batch_seconds,
                         trace)
    return results


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_fig3b_benchmark(benchmark, small_tables, name):
    """Wall-clock of the G-OLA online run for each figure query."""
    table_name, sql = ALL_QUERIES[name]
    trace = benchmark.pedantic(
        run_gola, args=(sql, table_name, small_tables, CONFIG),
        rounds=1, iterations=1,
    )
    assert len(trace.snapshots) == CONFIG.num_batches


class TestFig3bShape:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_ratio_grows_with_batches(self, fig3b, name):
        """CDM/G-OLA time ratio at batch 10 well above batch 1's."""
        gola, cdm, _ = fig3b[name]
        ratios = [c / g for c, g in zip(cdm, gola)]
        assert ratios[-1] > 1.5 * ratios[0]

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_cdm_per_batch_grows_linearly(self, fig3b, name):
        """CDM's per-batch latency grows ~linearly (prefix re-reads)."""
        _, cdm, _ = fig3b[name]
        # The simulated latencies are near-affine in the batch index.
        assert cdm[-1] > 3.0 * cdm[0]
        increments = [b - a for a, b in zip(cdm, cdm[1:])]
        assert min(increments) > 0

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_gola_per_batch_roughly_constant(self, fig3b, name):
        """G-OLA's per-batch latency stays bounded (paper: ~constant)."""
        gola, _, trace = fig3b[name]
        steady = [
            s for i, s in enumerate(gola, start=1)
            if i not in trace.rebuild_batches and i > 1
        ]
        if len(steady) >= 2:
            assert max(steady) < 3.5 * min(steady)

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_gola_beats_cdm_by_batch_10(self, fig3b, name):
        gola, cdm, _ = fig3b[name]
        assert cdm[-1] > 1.5 * gola[-1]
