"""Section 3.2 claim: "the uncertain sets are very small in practice".

For every figure query we track the uncertain-set size per mini-batch
and assert the property G-OLA's per-batch bound rests on: the uncertain
set stays a small fraction of the data processed so far, so per-batch
work ``|ΔD_i| + |U_{i-1}|`` never approaches CDM's ``|D_i|``.
"""

import pytest

from common import ALL_QUERIES, run_gola
from repro import GolaConfig

CONFIG = GolaConfig(num_batches=10, bootstrap_trials=40, seed=2015)
QUERY_NAMES = sorted(ALL_QUERIES)


@pytest.fixture(scope="module")
def traces(small_tables):
    return {
        name: run_gola(sql, table_name, small_tables, CONFIG)
        for name, (table_name, sql) in ALL_QUERIES.items()
    }


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_uncertain_fraction_benchmark(benchmark, small_tables, name):
    table_name, sql = ALL_QUERIES[name]
    trace = benchmark.pedantic(
        run_gola, args=(sql, table_name, small_tables, CONFIG),
        rounds=1, iterations=1,
    )
    assert trace.uncertain_sizes


class TestUncertainSetClaims:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_small_fraction_of_prefix(self, traces, small_tables, name):
        """|U_i| becomes a small fraction of the prefix |D_i|.

        Per-group uncertain values (Q18's per-order sums) start almost
        entirely contested — each group has seen only a row or two — and
        resolve as data accrues, so the bound is asserted over the second
        half of the run.
        """
        trace = traces[name]
        table_name, _ = ALL_QUERIES[name]
        total = small_tables[table_name].num_rows
        k = CONFIG.num_batches
        for i, size in enumerate(trace.uncertain_sizes, start=1):
            if i <= k // 2:
                continue
            prefix = total * i // k
            assert size < 0.35 * prefix, (
                f"{name}: |U_{i}|={size} vs |D_{i}|={prefix}"
            )

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_final_fraction_small(self, traces, small_tables, name):
        """At the end, the uncertain set is <15% of the dataset."""
        trace = traces[name]
        table_name, _ = ALL_QUERIES[name]
        total = small_tables[table_name].num_rows
        assert trace.uncertain_sizes[-1] < 0.15 * total

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_per_batch_work_bounded(self, traces, small_tables, name):
        """Rows touched per batch (no rebuild) = |ΔD| + |U|, << |D_i|."""
        trace = traces[name]
        table_name, _ = ALL_QUERIES[name]
        total = small_tables[table_name].num_rows
        batch = total // CONFIG.num_batches
        for i, rows in enumerate(trace.per_batch_rows, start=1):
            if i in trace.rebuild_batches or i == 1:
                continue
            prev_uncertain = trace.uncertain_sizes[i - 2]
            # Both lineage blocks scan the batch; the main block adds its
            # cached uncertain set.  Small slack for rounding.
            expected_max = 2 * batch + prev_uncertain + 2
            assert sum(rows.values()) <= expected_max + batch

    def test_q18_membership_uncertainty_shrinks(self, small_tables):
        """Q18's contested membership resolves as order sums fill in."""
        trace = run_gola(ALL_QUERIES["Q18"][1], "tpch", small_tables,
                         CONFIG)
        sizes = trace.uncertain_sizes
        assert sizes[-1] < max(sizes)
