"""Serve-layer benchmark: SLO latency, convergence, telemetry overhead.

Standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_serve.py --json BENCH_serve.json

Three phases, all seeded and reproducible:

1. **convergence** — each workload-mix query runs alone through the
   scheduler; the serve telemetry layer reports first-answer latency and
   time-to-±ε for ε in 10%/5%/1% straight from the per-query convergence
   stream.
2. **load** — a real HTTP server (ephemeral port) under the seeded
   Poisson open-loop :class:`~repro.serve.loadgen.LoadGenerator`:
   client-observed p50/p95/p99 first-answer latency, convergence
   latency and sustained throughput.
3. **overhead** — the regression gate.  Identical query fleets run
   in-process with telemetry on and off, alternating order, median of
   ``--pairs`` pairs; telemetry-on throughput must stay within 5% of
   telemetry-off (``--max-overhead``), and the final estimates must be
   bit-identical between the two (telemetry must never perturb
   results).

Exits non-zero when the overhead gate fails, results diverge, or the
load phase saw errors.  ``--smoke`` shrinks sizes for CI but keeps
every gate on — overhead is a ratio, so it needs no large inputs.
"""

import argparse
import json
import os
import statistics
import sys
import time

from repro.config import GolaConfig, ServeConfig
from repro.core.session import GolaSession
from repro.obs import MetricsRegistry, Tracer
from repro.serve import GolaServer, QueryScheduler
from repro.serve.loadgen import DEFAULT_MIX, LoadGenerator, LoadSpec
from repro.workloads import generate_conviva, generate_sessions


def _make_scheduler(rows, batches, trials, seed, telemetry=True):
    serve = ServeConfig(telemetry=telemetry)
    config = GolaConfig(
        num_batches=batches, bootstrap_trials=trials, seed=seed,
        serve=serve,
    )
    tracer = Tracer(metrics=MetricsRegistry(enabled=True))
    session = GolaSession(config, tracer=tracer)
    session.register_table("sessions", generate_sessions(rows, seed=seed))
    session.register_table("conviva", generate_conviva(rows, seed=seed))
    return QueryScheduler(session, serve=serve)


# ---------------------------------------------------------------------------
# Phase 1: per-query convergence from the telemetry stream
# ---------------------------------------------------------------------------

def _bench_convergence(rows, batches, trials, seed):
    scheduler = _make_scheduler(rows, batches, trials, seed)
    out = []
    try:
        for name, sql, _ in DEFAULT_MIX:
            run = scheduler.submit(sql)
            scheduler.wait(run.id, timeout=300.0)
            telemetry = scheduler.telemetry.get(run.id)
            summary = telemetry.summary(run.state, run.batches_done)
            out.append({
                "query": name,
                "state": run.state,
                "batches": run.batches_done,
                "first_answer_s": summary["first_answer_s"],
                "time_to": summary["time_to"],
                "final_rel_width": summary["final_rel_width"],
                "total_s": summary["total_s"],
            })
    finally:
        scheduler.close()
    return out


# ---------------------------------------------------------------------------
# Phase 2: HTTP load with client-observed latencies
# ---------------------------------------------------------------------------

def _bench_load(rows, batches, trials, seed, queries, rate, clients):
    scheduler = _make_scheduler(rows, batches, trials, seed)
    server = GolaServer(scheduler)
    server.start()
    try:
        spec = LoadSpec(
            rate_qps=rate, clients=clients, queries=queries, seed=seed,
            num_batches=batches, target_rel_width=0.01,
        )
        report = LoadGenerator(spec).run(server.url)
    finally:
        server.shutdown()
    return report


# ---------------------------------------------------------------------------
# Phase 3: telemetry overhead gate + bit-identity
# ---------------------------------------------------------------------------

def _run_fleet(rows, batches, trials, seed, telemetry, queries):
    """Wall time to drain `queries` submissions; returns (s, estimates)."""
    scheduler = _make_scheduler(
        rows, batches, trials, seed, telemetry=telemetry
    )
    mix = [sql for _, sql, _ in DEFAULT_MIX]
    try:
        start = time.perf_counter()
        runs = [
            scheduler.submit(mix[i % len(mix)]) for i in range(queries)
        ]
        scheduler.wait(timeout=600.0)
        elapsed = time.perf_counter() - start
        estimates = []
        for run in runs:
            snap = run.last_snapshot
            estimates.append(
                None if snap is None else [
                    snap.table.column(c).tobytes()
                    for c in snap.table.schema.names
                ]
            )
    finally:
        scheduler.close()
    return elapsed, estimates


def _bench_overhead(rows, batches, trials, seed, queries, pairs):
    # Untimed warmup: the first fleet pays one-off import/allocator
    # costs that would otherwise land on whichever config runs first.
    _run_fleet(rows, batches, trials, seed, True, queries)
    on_s, off_s = [], []
    reference = None
    identical = True
    for pair in range(pairs):
        # Alternate order within alternating pairs so drift cancels.
        order = (
            [(True, on_s), (False, off_s)] if pair % 2 == 0
            else [(False, off_s), (True, on_s)]
        )
        for telemetry, sink in order:
            elapsed, estimates = _run_fleet(
                rows, batches, trials, seed, telemetry, queries
            )
            sink.append(elapsed)
            if reference is None:
                reference = estimates
            elif estimates != reference:
                identical = False
    # Scheduler noise (CI neighbors, thermal) only ever *adds* wall
    # time, so each config's minimum is its least-contaminated run;
    # the gate compares those.  Per-pair ratios are kept for context.
    ratios = [off / on for on, off in zip(on_s, off_s)]
    best_on = min(on_s)
    best_off = min(off_s)
    return {
        "queries_per_trial": queries,
        "pairs": pairs,
        "telemetry_on_s": [round(s, 4) for s in on_s],
        "telemetry_off_s": [round(s, 4) for s in off_s],
        "best_on_s": round(best_on, 4),
        "best_off_s": round(best_off, 4),
        "throughput_on_qps": round(queries / best_on, 3),
        "throughput_off_qps": round(queries / best_off, 3),
        "pair_ratios": [round(r, 4) for r in ratios],
        "median_pair_ratio": round(statistics.median(ratios), 4),
        "throughput_ratio": round(best_off / best_on, 4),
        "identical_results": identical,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serve-layer SLO/convergence/telemetry-overhead "
                    "benchmark"
    )
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write results here (e.g. BENCH_serve.json)")
    parser.add_argument("--rows", type=int, default=50_000,
                        help="rows per generated workload table")
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--trials", type=int, default=40,
                        help="bootstrap trials per snapshot")
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--load-queries", type=int, default=24,
                        help="queries submitted by the HTTP load phase")
    parser.add_argument("--rate", type=float, default=6.0,
                        help="Poisson arrival rate for the load phase")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--overhead-queries", type=int, default=9,
                        help="queries per overhead trial")
    parser.add_argument("--pairs", type=int, default=3,
                        help="on/off trial pairs for the overhead gate")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="allowed telemetry throughput loss "
                             "(0.05 = within 5%%)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI; gates stay on")
    args = parser.parse_args(argv)

    if args.smoke:
        args.rows = min(args.rows, 6_000)
        args.batches = min(args.batches, 5)
        args.trials = min(args.trials, 20)
        args.load_queries = min(args.load_queries, 10)
        args.rate = min(args.rate, 20.0)
        args.overhead_queries = min(args.overhead_queries, 6)

    print(f"convergence: {args.rows:,} rows x {args.batches} batches "
          f"x {args.trials} trials, seed {args.seed}")
    convergence = _bench_convergence(
        args.rows, args.batches, args.trials, args.seed
    )
    for entry in convergence:
        reached = ", ".join(
            f"±{float(eps):.0%} in {secs:.3f}s"
            for eps, secs in sorted(
                entry["time_to"].items(), key=lambda kv: -float(kv[0])
            )
        ) or "no target reached"
        print(f"  {entry['query']:<10} first answer "
              f"{entry['first_answer_s']:.3f}s; {reached}")

    print(f"load: {args.load_queries} queries at {args.rate}/s over "
          f"{args.clients} clients (open loop)")
    load = _bench_load(
        args.rows, args.batches, args.trials, args.seed,
        args.load_queries, args.rate, args.clients,
    )
    fa = load["first_answer_s"] or {}
    conv = load["convergence_s"] or {}
    print(f"  completed {load['completed']}/{load['submitted']} "
          f"({load['rejected']} rejected, {load['errors']} errors) "
          f"at {load['throughput_qps']:.2f} q/s")
    if fa:
        print(f"  first answer  p50={fa['p50'] * 1e3:7.1f}ms  "
              f"p95={fa['p95'] * 1e3:7.1f}ms  "
              f"p99={fa['p99'] * 1e3:7.1f}ms")
    if conv:
        print(f"  time to ±1%   p50={conv['p50'] * 1e3:7.1f}ms  "
              f"p95={conv['p95'] * 1e3:7.1f}ms  "
              f"p99={conv['p99'] * 1e3:7.1f}ms  "
              f"({load['reached_target']} reached)")

    print(f"overhead: {args.pairs} alternating on/off pairs x "
          f"{args.overhead_queries} queries")
    overhead = _bench_overhead(
        args.rows, args.batches, args.trials, args.seed,
        args.overhead_queries, args.pairs,
    )
    print(f"  telemetry on  {overhead['best_on_s']:.3f}s best "
          f"({overhead['throughput_on_qps']:.2f} q/s)")
    print(f"  telemetry off {overhead['best_off_s']:.3f}s best "
          f"({overhead['throughput_off_qps']:.2f} q/s)")
    print(f"  ratio {overhead['throughput_ratio']:.4f}  "
          f"identical={overhead['identical_results']}")

    results = {
        "benchmark": "bench_serve",
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "seed": args.seed,
        "rows": args.rows,
        "batches": args.batches,
        "trials": args.trials,
        "convergence": convergence,
        "load": load,
        "overhead": overhead,
        "max_overhead": args.max_overhead,
    }

    failures = []
    if load["errors"]:
        failures.append(f"load phase saw {load['errors']} client errors")
    if load["completed"] == 0:
        failures.append("load phase completed no queries")
    if not overhead["identical_results"]:
        failures.append(
            "telemetry on/off runs produced different results"
        )
    floor = 1.0 - args.max_overhead
    if overhead["throughput_ratio"] < floor:
        failures.append(
            f"telemetry overhead gate: on/off throughput ratio "
            f"{overhead['throughput_ratio']:.4f} < {floor:.2f}"
        )
    results["failures"] = failures

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"results written to {args.json}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
