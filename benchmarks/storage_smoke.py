"""Storage smoke: stream a dataset 4x larger than the process budget.

The memory claim behind colstore is that a converted dataset never has
to fit in the process heap: ``plain``-coded numeric columns decode to
zero-copy views into a ``np.memmap`` and the controller touches one
mini-batch at a time.  This harness *enforces* that claim instead of
asserting it:

1. convert an all-numeric sessions table to a colstore dataset whose
   decoded size is exactly 4x a memory budget;
2. run the paper's SBI query in a child process whose ``RLIMIT_DATA``
   is clamped to (post-import baseline + budget) — the query must
   complete and its final snapshot must match an unbudgeted in-memory
   reference run bitwise;
3. prove the budget is real: a sibling child under the same limit that
   tries to materialize the dataset with ``to_table()`` must die of
   MemoryError;
4. check C3/Q17 snapshot-stream bit-identity (colstore vs in-memory)
   and embed the dataset's ``repro inspect`` report in the JSON.

The streaming claim covers the steady-state fold path, not guard
recomputation: a rebuild *by contract* re-ingests the concatenated
retained prefix with its dense weight matrix, which no fixed budget can
absorb.  G-OLA's answer to that is the ε knob (``epsilon_multiplier``):
wider variation ranges trade a slightly larger uncertain set for a
lower recomputation probability.  With only ``TRIALS = 8`` bootstrap
replicas the ranges are noisy, so the parent escalates ε until the
unbudgeted reference run reports zero rebuilds and hands that ε to the
budgeted child — both runs share one config, so bit-identity still
holds.  The chosen ε and the uncertain-set high-water mark land in the
JSON report.

On platforms without ``RLIMIT_DATA`` (or an unreadable
``/proc/self/status``) the memory gates are SKIPPED with a loud warning
and the skip recorded in the JSON; the identity gates always run.

CI runs ``--smoke``; locally::

    PYTHONPATH=src python benchmarks/storage_smoke.py --json report.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

K_BATCHES = 32
TRIALS = 8
SEED = 2015
# ε escalation ladder: smallest rebuild-free multiplier wins (paper
# default is 1.0; B=8 replicas need more slack — see module docstring).
EPSILON_LADDER = (6.0, 10.0, 16.0, 24.0)


def _vm_data_kb() -> int:
    """Current VmData (heap + anonymous mappings) in kB, or -1."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmData:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return -1


def _rlimit_supported() -> bool:
    try:
        import resource

        resource.getrlimit(resource.RLIMIT_DATA)
    except (ImportError, AttributeError, OSError, ValueError):
        return False
    return _vm_data_kb() > 0


# ---------------------------------------------------------------------------
# Child modes (re-invocations of this file with --child)
# ---------------------------------------------------------------------------

def _child(mode: str, dataset: str, budget_bytes: int,
           epsilon: float) -> int:
    """Run under an enforced RLIMIT_DATA; emit a JSON line on stdout.

    Everything heavy is imported *before* the limit is applied, so the
    budget constrains the query's working set, not interpreter startup.
    """
    import resource

    import numpy as np  # noqa: F401  (priced into the baseline)

    from repro import GolaConfig, GolaSession
    from repro.faults.chaos import snapshot_fingerprint
    from repro.workloads import SBI_QUERY

    baseline_kb = _vm_data_kb()
    limit = baseline_kb * 1024 + budget_bytes
    resource.setrlimit(resource.RLIMIT_DATA, (limit, limit))

    if mode == "materialize":
        # Must die: decoding every partition into one heap-resident
        # table needs 4x the budget.
        try:
            from repro.storage.colstore import open_dataset

            table = open_dataset(dataset).to_table()
            print(json.dumps({
                "mode": mode, "memory_error": False,
                "rows": table.num_rows,
            }))
        except MemoryError:
            print(json.dumps({"mode": mode, "memory_error": True}))
        return 0

    config = GolaConfig(num_batches=K_BATCHES, bootstrap_trials=TRIALS,
                        seed=SEED, epsilon_multiplier=epsilon)
    session = GolaSession(config)
    session.register_colstore("sessions", dataset)
    snaps = list(session.sql(SBI_QUERY).run_online())
    fingerprint, count = snapshot_fingerprint(snaps)
    print(json.dumps({
        "mode": mode,
        "fingerprint": fingerprint,
        "snapshots": count,
        "baseline_kb": baseline_kb,
        "budget_bytes": budget_bytes,
        "peak_vm_data_kb": _vm_data_kb(),
    }))
    return 0


def _spawn_child(mode: str, dataset: Path, budget_bytes: int,
                 epsilon: float):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, __file__, "--child", mode,
         "--dataset", str(dataset), "--budget-bytes", str(budget_bytes),
         "--epsilon", str(epsilon)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    payload = None
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("{"):
            payload = json.loads(line)
    return proc, payload


# ---------------------------------------------------------------------------
# Parent
# ---------------------------------------------------------------------------

def _wide_sessions(rows: int):
    """The sessions table plus eight telemetry metric columns.

    Wide fact tables are where the columnar claim bites: SBI touches
    two of eleven columns, and the nine it never reads stay on disk —
    ``plain``-coded mmap columns decode to zero-copy views, so they
    cost address space, not budgeted heap.
    """
    import numpy as np

    from repro.storage.table import Table
    from repro.workloads import generate_sessions

    base = generate_sessions(rows, seed=SEED)
    rng = np.random.default_rng(SEED + 1)
    columns = {name: base.column(name) for name in base.schema.names}
    for i in range(8):
        columns[f"metric_{i}"] = rng.normal(0.0, 1.0, rows)
    return Table.from_columns(columns)


def _identity_checks(rows: int):
    """C3/Q17 colstore-vs-in-memory stream identity (no rlimit)."""
    from repro import GolaConfig, GolaSession
    from repro.faults.chaos import snapshot_fingerprint
    from repro.storage.colstore import convert_table
    from repro.workloads import (
        CONVIVA_QUERIES,
        TPCH_QUERIES,
        generate_conviva,
        generate_tpch,
    )

    jobs = [
        ("C3", "conviva", generate_conviva, CONVIVA_QUERIES["C3"]),
        ("Q17", "tpch", generate_tpch, TPCH_QUERIES["Q17"]),
    ]
    out = []
    config = GolaConfig(num_batches=6, bootstrap_trials=TRIALS, seed=SEED)
    with tempfile.TemporaryDirectory() as tmp:
        for name, table_name, generate, sql in jobs:
            table = generate(rows, seed=SEED)
            path = Path(tmp) / table_name
            if not path.exists():
                convert_table(table, path, num_batches=6, seed=SEED,
                              shuffle=True)
            mem = GolaSession(config)
            mem.register_table(table_name, table)
            mem_fp = snapshot_fingerprint(mem.sql(sql).run_online())
            cs = GolaSession(config)
            cs.register_colstore(table_name, path)
            cs_fp = snapshot_fingerprint(cs.sql(sql).run_online())
            out.append({
                "query": name,
                "rows": rows,
                "identical": cs_fp == mem_fp,
            })
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=4_000_000)
    parser.add_argument("--identity-rows", type=int, default=40_000)
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--smoke", action="store_true",
                        help="CI sizes (~1M rows, same gates)")
    parser.add_argument("--child", default=None,
                        choices=("stream", "materialize"))
    parser.add_argument("--dataset", default=None)
    parser.add_argument("--budget-bytes", type=int, default=0)
    parser.add_argument("--epsilon", type=float,
                        default=EPSILON_LADDER[0])
    args = parser.parse_args(argv)

    if args.child:
        return _child(args.child, args.dataset, args.budget_bytes,
                      args.epsilon)

    if args.smoke:
        args.rows = min(args.rows, 1_000_000)
        args.identity_rows = min(args.identity_rows, 12_000)

    from repro import GolaConfig, GolaSession
    from repro.faults.chaos import snapshot_fingerprint
    from repro.storage.colstore import convert_table, open_dataset
    from repro.workloads import SBI_QUERY

    failures = []
    print(f"generating {args.rows:,} wide session rows ...")
    table = _wide_sessions(args.rows)

    tmp = tempfile.TemporaryDirectory(prefix="storage-smoke-")
    dataset = Path(tmp.name) / "sessions"
    # plain codec: numeric columns decode to zero-copy mmap views, so
    # streaming cost is one batch of weights + states, not the table.
    convert_table(table, dataset, num_batches=K_BATCHES, seed=SEED,
                  shuffle=True, codec="plain")
    ds = open_dataset(dataset)
    decoded = ds.estimated_bytes
    budget = decoded // 4
    print(f"dataset: {decoded:,} decoded bytes in {K_BATCHES} "
          f"partitions; budget {budget:,} bytes (4x smaller)")

    # Escalate ε until the reference run is rebuild-free (module
    # docstring explains why a rebuild is outside the streaming claim).
    epsilon = ref_fp = ref_count = max_uncertain = None
    for candidate in EPSILON_LADDER:
        config = GolaConfig(num_batches=K_BATCHES,
                            bootstrap_trials=TRIALS, seed=SEED,
                            epsilon_multiplier=candidate)
        reference = GolaSession(config)
        reference.register_table("sessions", table)
        snaps = list(reference.sql(SBI_QUERY).run_online())
        rebuilds = sum(len(s.rebuilds) for s in snaps)
        max_uncertain = max(
            sum(s.uncertain_sizes.values()) for s in snaps
        )
        print(f"  reference at epsilon={candidate}: "
              f"rebuilds={rebuilds} max_uncertain={max_uncertain:,}")
        if rebuilds == 0:
            epsilon = candidate
            ref_fp, ref_count = snapshot_fingerprint(snaps)
            break
    if epsilon is None:
        print("FAIL: no epsilon in the ladder gave a rebuild-free "
              "reference run", file=sys.stderr)
        return 1

    report = {
        "benchmark": "storage_smoke",
        "smoke": args.smoke,
        "rows": args.rows,
        "batches": K_BATCHES,
        "trials": TRIALS,
        "decoded_bytes": decoded,
        "budget_bytes": budget,
        "budget_ratio": round(decoded / budget, 2),
        "epsilon_multiplier": epsilon,
        "max_uncertain_rows": max_uncertain,
        "rlimit_enforced": _rlimit_supported(),
    }

    if report["rlimit_enforced"]:
        print(f"SBI under RLIMIT_DATA = baseline + {budget:,} bytes ...")
        proc, payload = _spawn_child("stream", dataset, budget, epsilon)
        ok = (proc.returncode == 0 and payload is not None
              and payload["fingerprint"] == ref_fp
              and payload["snapshots"] == ref_count)
        report["stream"] = {
            "returncode": proc.returncode,
            "payload": payload,
            "identical_to_memory": ok,
        }
        if not ok:
            failures.append(
                "budgeted SBI stream failed or diverged: "
                f"rc={proc.returncode} stderr={proc.stderr[-500:]!r}"
            )
        else:
            print(f"  completed {payload['snapshots']} snapshots, "
                  f"bit-identical to in-memory "
                  f"(VmData {payload['baseline_kb']} -> "
                  f"{payload['peak_vm_data_kb']} kB)")

        proc, payload = _spawn_child("materialize", dataset, budget,
                                     epsilon)
        died = payload is not None and payload.get("memory_error") \
            or proc.returncode != 0
        report["materialize_control"] = {
            "returncode": proc.returncode,
            "payload": payload,
            "hit_memory_error": bool(died),
        }
        if not died:
            failures.append(
                "materialize control survived under the budget — the "
                "rlimit is not actually constraining the heap"
            )
        else:
            print("  materialize control died of MemoryError under the "
                  "same budget (the limit is real)")
    else:
        report["stream"] = report["materialize_control"] = None
        print(
            "=" * 72 + "\n"
            "WARNING: RLIMIT_DATA not supported on this platform; the\n"
            "  memory-budget gates are SKIPPED, not passed.  Identity\n"
            "  gates below still run.\n" + "=" * 72,
            file=sys.stderr,
        )

    print(f"identity checks (C3/Q17, {args.identity_rows:,} rows) ...")
    identity = _identity_checks(args.identity_rows)
    report["identity"] = identity
    for entry in identity:
        print(f"  {entry['query']}: identical={entry['identical']}")
        if not entry["identical"]:
            failures.append(
                f"{entry['query']} colstore stream diverged from "
                "in-memory"
            )

    inspect = subprocess.run(
        [sys.executable, "-m", "repro", "inspect", str(dataset),
         "--json"],
        capture_output=True, text=True,
        env={**os.environ,
             "PYTHONPATH": str(Path(__file__).resolve().parents[1]
                               / "src")},
    )
    report["inspect"] = (json.loads(inspect.stdout)
                         if inspect.returncode == 0 else None)

    report["failures"] = failures
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n",
                                   encoding="utf-8")
        print(f"report written to {args.json}")
    tmp.cleanup()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
